//! The TCP server: thread-per-connection workers over a [`KvEngine`].
//!
//! Each connection is served strictly in order — read a frame, execute,
//! write the response — so pipelined clients get responses in request
//! order. Before reading the *next* request the worker consults the
//! engine's live write regime: while the write controller reports
//! `Stopped`, the worker simply stops reading its socket. TCP flow
//! control then pushes the stall back to the client instead of letting
//! requests pile up in server memory.
//!
//! Shutdown is graceful: the accept loop closes, every worker finishes
//! (and acks) the request it is currently executing, partially received
//! frames are drained and served, and only then are the threads joined
//! and the engine released. Because a write is acked only after
//! `write_opt` returns, nothing is ever acked that the engine has not
//! committed under the request's durability flag.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lsm_kvs::{KvEngine, WriteOptions, WriteRegime};
use parking_lot::Mutex;

use crate::protocol::{frame, ops_to_batch, Request, Response, MAX_FRAME_LEN};

/// How long a blocked socket read waits before re-checking the
/// shutdown flag and the write regime.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Sleep slice while the engine reports a stopped write regime.
const STALL_BACKOFF: Duration = Duration::from_millis(2);

/// How long a connection trusts its cached write-regime reading before
/// consulting the engine again.
const REGIME_RECHECK: Duration = Duration::from_millis(1);

/// How long a worker keeps waiting for the rest of a partially received
/// frame once shutdown has been requested. Bounds drain time against a
/// client that sent half a frame and went silent.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Per-server counters, rendered as a `** Server Stats **` section that
/// the Stats RPC appends to the engine's `stats_text()` dump.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicU64,
    /// Requests executed, by outcome.
    pub requests_ok: AtomicU64,
    /// Requests that returned an error response.
    pub requests_err: AtomicU64,
    /// Protocol violations that closed a connection.
    pub protocol_errors: AtomicU64,
    /// Times a worker paused socket intake because the engine reported
    /// a stopped write regime.
    pub backpressure_stalls: AtomicU64,
    /// Payload bytes received (excluding length prefixes).
    pub bytes_received: AtomicU64,
    /// Payload bytes sent (excluding length prefixes).
    pub bytes_sent: AtomicU64,
}

impl ServerStats {
    /// Renders the section appended to the engine dump.
    pub fn render(&self) -> String {
        format!(
            "\n** Server Stats **\n\
             connections_accepted: {}  connections_active: {}\n\
             requests_ok: {}  requests_err: {}  protocol_errors: {}\n\
             backpressure_stalls: {}  bytes_received: {}  bytes_sent: {}\n",
            self.connections_accepted.load(Ordering::Relaxed),
            self.connections_active.load(Ordering::Relaxed),
            self.requests_ok.load(Ordering::Relaxed),
            self.requests_err.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.backpressure_stalls.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
        )
    }
}

struct Shared {
    engine: Arc<dyn KvEngine>,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// A running server; dropping it (or calling [`shutdown`](Self::shutdown))
/// drains and stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested (e.g. via the Shutdown RPC).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown request arrives (Shutdown RPC or another
    /// thread calling [`shutdown`](Self::shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Server counters (live).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Stops accepting, drains in-flight requests, and joins every
    /// worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection; it may
        // already have exited, so failures are fine.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving `engine`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(engine: Arc<dyn KvEngine>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
    });
    let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_workers = Arc::clone(&workers);
    let accept_thread = std::thread::Builder::new()
        .name("kv-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let s = Arc::clone(&accept_shared);
                s.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                s.stats.connections_active.fetch_add(1, Ordering::Relaxed);
                let worker = std::thread::Builder::new()
                    .name("kv-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(&s, stream);
                        s.stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection worker");
                accept_workers.lock().push(worker);
            }
        })?;

    Ok(ServerHandle {
        shared,
        local_addr,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// Outcome of trying to read one frame.
enum ReadFrame {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Clean end: peer closed between frames, or shutdown arrived
    /// before any byte of the next frame.
    Closed,
    /// The peer violated the protocol (described by the message).
    Protocol(String),
    /// Transport failure.
    Io(io::Error),
}

/// Buffered frame reader: one `read(2)` usually yields the whole frame
/// (header and payload together), and pipelined requests that arrived
/// in the same segment are parsed without touching the socket again.
struct FrameReader {
    pending: Vec<u8>,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader { pending: Vec::new() }
    }

    /// Parses a complete frame out of `pending`, if one is there.
    fn take_buffered(&mut self) -> Result<Option<Vec<u8>>, ReadFrame> {
        if self.pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(ReadFrame::Protocol(format!(
                "frame of {len} bytes exceeds {MAX_FRAME_LEN}"
            )));
        }
        let total = 4 + len as usize;
        if self.pending.len() < total {
            return Ok(None);
        }
        let payload = self.pending[4..total].to_vec();
        self.pending.drain(..total);
        Ok(Some(payload))
    }

    /// Reads the next frame. A clean EOF or a requested shutdown ends
    /// the connection **only at a frame boundary**; once part of a
    /// frame is buffered it is always completed (a shutdown still
    /// drains and serves it, bounded by [`DRAIN_GRACE`]) or surfaced as
    /// an error — stopping halfway through a frame must never
    /// desynchronize the stream.
    fn next(&mut self, stream: &mut TcpStream, shared: &Shared) -> ReadFrame {
        let mut drain_waited = Duration::ZERO;
        loop {
            match self.take_buffered() {
                Ok(Some(payload)) => return ReadFrame::Frame(payload),
                Ok(None) => {}
                Err(e) => return e,
            }
            let boundary = self.pending.is_empty();
            if boundary && shared.shutdown.load(Ordering::SeqCst) {
                return ReadFrame::Closed;
            }
            let mut chunk = [0u8; 16 * 1024];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if boundary {
                        return ReadFrame::Closed;
                    }
                    return ReadFrame::Protocol("peer closed mid-frame".into());
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // A quiet socket is fine while serving, but once
                    // shutdown is requested a half-received frame only
                    // gets DRAIN_GRACE to arrive — a silent client must
                    // not pin the drain forever.
                    if !boundary && shared.shutdown.load(Ordering::SeqCst) {
                        drain_waited += POLL_INTERVAL;
                        if drain_waited >= DRAIN_GRACE {
                            return ReadFrame::Protocol(
                                "connection idle mid-frame during shutdown".into(),
                            );
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return ReadFrame::Io(e),
            }
        }
    }
}

fn send_response(stream: &mut TcpStream, shared: &Shared, resp: &Response) -> io::Result<()> {
    let payload = resp.encode();
    shared
        .stats
        .bytes_sent
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    stream.write_all(&frame(&payload))
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // A client that stops reading cannot pin this worker (and with it,
    // shutdown) forever on a blocked response write.
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = FrameReader::new();
    // The regime check takes the engine's state lock, so a cached value
    // is reused for up to REGIME_RECHECK between frames instead of
    // contending with the request path on every single request.
    let mut regime = shared.engine.write_regime();
    let mut regime_at = std::time::Instant::now();
    loop {
        // Backpressure: while the engine is in a stopped write regime,
        // stop draining this socket. The kernel receive buffer fills,
        // TCP advertises a zero window, and the stall propagates to the
        // client instead of ballooning server memory. (Delayed regimes
        // are handled by the engine's own write-path throttling.)
        if regime == WriteRegime::Stopped || regime_at.elapsed() >= REGIME_RECHECK {
            regime = shared.engine.write_regime();
            regime_at = std::time::Instant::now();
            if regime == WriteRegime::Stopped && !shared.shutdown.load(Ordering::SeqCst) {
                shared.stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
                while shared.engine.write_regime() == WriteRegime::Stopped
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    std::thread::sleep(STALL_BACKOFF);
                }
                regime = WriteRegime::Normal;
                regime_at = std::time::Instant::now();
            }
        }
        let payload = match reader.next(&mut stream, shared) {
            ReadFrame::Frame(p) => p,
            ReadFrame::Closed => return Ok(()),
            ReadFrame::Protocol(msg) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Err(lsm_kvs::Error::corruption(msg));
                let _ = send_response(&mut stream, shared, &resp);
                return Ok(());
            }
            ReadFrame::Io(e) => return Err(e),
        };
        shared
            .stats
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Malformed payload: answer with the decode error and
                // close — after garbage we cannot trust the framing.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(&mut stream, shared, &Response::Err(e));
                return Ok(());
            }
        };
        let is_shutdown_req = matches!(req, Request::Shutdown);
        let resp = execute(shared, req);
        match &resp {
            Response::Err(_) => shared.stats.requests_err.fetch_add(1, Ordering::Relaxed),
            _ => shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed),
        };
        send_response(&mut stream, shared, &resp)?;
        if is_shutdown_req {
            shared.shutdown.store(true, Ordering::SeqCst);
            return Ok(());
        }
    }
}

fn execute(shared: &Shared, req: Request) -> Response {
    let engine = shared.engine.as_ref();
    match req {
        Request::Get { key } => match engine.get(&key) {
            Ok(Some(v)) => Response::Value(v),
            Ok(None) => Response::NotFound,
            Err(e) => Response::Err(e),
        },
        Request::Put { sync, key, value } => {
            let mut batch = lsm_kvs::WriteBatch::new();
            batch.put(&key, &value);
            ack(engine.write_opt(&WriteOptions { sync }, batch))
        }
        Request::Delete { sync, key } => {
            let mut batch = lsm_kvs::WriteBatch::new();
            batch.delete(&key);
            ack(engine.write_opt(&WriteOptions { sync }, batch))
        }
        Request::Batch { sync, ops } => {
            ack(engine.write_opt(&WriteOptions { sync }, ops_to_batch(&ops)))
        }
        Request::Scan { start, count } => match engine.scan(&start, count as usize) {
            Ok(entries) => Response::Entries(entries),
            Err(e) => Response::Err(e),
        },
        Request::Flush => ack(engine.flush()),
        Request::Stats => {
            let mut text = engine.stats_text();
            text.push_str(&shared.stats.render());
            Response::Stats { text, stats: Box::new(engine.stats()) }
        }
        Request::WaitIdle => ack(engine.wait_background_idle()),
        Request::Ping => Response::Ok,
        Request::Shutdown => Response::Ok,
    }
}

fn ack(r: lsm_kvs::Result<()>) -> Response {
    match r {
        Ok(()) => Response::Ok,
        Err(e) => Response::Err(e),
    }
}
