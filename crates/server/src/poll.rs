//! Readiness polling for the event-driven server loop.
//!
//! [`Poller`] wraps epoll on Linux and poll(2) elsewhere on unix,
//! declared directly against the C library (std already links it), so
//! the server needs no external crates. Both backends are
//! level-triggered: an event keeps firing while the condition holds,
//! which lets the loop process a bounded amount per wakeup without
//! losing readiness.
//!
//! A registered fd carries a caller-chosen `token`; [`Poller::wake`]
//! makes `wait` return with the reserved [`WAKE_TOKEN`] so other
//! threads (the accept loop, shutdown) can interrupt a blocked wait.

use std::io;
use std::os::unix::io::RawFd;

/// Token reported for [`Poller::wake`] wakeups; never use it when
/// registering a connection.
pub const WAKE_TOKEN: usize = usize::MAX;

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token given at registration (or [`WAKE_TOKEN`]).
    pub token: usize,
    /// Readable, or peer closed/error (a read will not block).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
}

fn last_os_error_guard(ret: i32) -> io::Result<()> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{last_os_error_guard, PollEvent, RawFd, WAKE_TOKEN};
    use std::io;
    use std::time::Duration;

    // x86_64 Linux declares epoll_event packed; without it the kernel
    // writes data at the wrong offset.
    #[repr(C, packed)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;
    const EFD_CLOEXEC: i32 = 0x80000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// epoll-backed poller: one epoll fd plus an eventfd for wakeups.
    pub struct Poller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance and its wakeup eventfd.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            last_os_error_guard(epfd)?;
            let wakefd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            if wakefd < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let p = Poller { epfd, wakefd };
            p.ctl(EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, true, false)?;
            Ok(p)
        }

        fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut events = EPOLLERR | EPOLLHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events, data: token as u64 };
            last_os_error_guard(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })
        }

        /// Starts watching `fd` under `token` for the given interests.
        pub fn register(
            &self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Blocks until an event or `timeout` (`None` = forever) and
        /// fills `out` with readiness events.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf: [EpollEvent; 64] = unsafe { std::mem::zeroed() };
            let timeout_ms = timeout.map_or(-1i32, |d| {
                i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(0)
            });
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), 64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                let bits = ev.events;
                let token = ev.data as usize;
                if token == WAKE_TOKEN {
                    // Drain the eventfd counter so the next wait blocks.
                    let mut b = [0u8; 8];
                    unsafe { read(self.wakefd, b.as_mut_ptr(), 8) };
                    out.push(PollEvent { token, readable: false, writable: false });
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Interrupts a concurrent [`wait`](Self::wait); it reports a
        /// [`WAKE_TOKEN`] event.
        pub fn wake(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            last_os_error_guard(unsafe { write(self.wakefd, one.as_ptr(), 8) } as i32)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{last_os_error_guard, PollEvent, RawFd, WAKE_TOKEN};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// poll(2)-backed fallback: interest set kept in user space, wakeups
    /// via a self-pipe.
    pub struct Poller {
        interests: Mutex<HashMap<RawFd, (usize, bool, bool)>>,
        pipe_r: RawFd,
        pipe_w: RawFd,
    }

    impl Poller {
        /// Creates the poller and its self-pipe wakeup channel.
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0i32; 2];
            last_os_error_guard(unsafe { pipe(fds.as_mut_ptr()) })?;
            // O_NONBLOCK on both ends; F_SETFL = 4, O_NONBLOCK = 0x4
            // on the BSDs this fallback targets.
            unsafe {
                fcntl(fds[0], 4, 0x4);
                fcntl(fds[1], 4, 0x4);
            }
            Ok(Poller {
                interests: Mutex::new(HashMap::new()),
                pipe_r: fds[0],
                pipe_w: fds[1],
            })
        }

        /// Starts watching `fd` under `token` for the given interests.
        pub fn register(
            &self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.interests.lock().insert(fd, (token, readable, writable));
            Ok(())
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.register(fd, token, readable, writable)
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.interests.lock().remove(&fd);
            Ok(())
        }

        /// Blocks until an event or `timeout` (`None` = forever) and
        /// fills `out` with readiness events.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> =
                vec![PollFd { fd: self.pipe_r, events: POLLIN, revents: 0 }];
            let mut tokens = vec![WAKE_TOKEN];
            for (&fd, &(token, readable, writable)) in self.interests.lock().iter() {
                let mut events = 0i16;
                if readable {
                    events |= POLLIN;
                }
                if writable {
                    events |= POLLOUT;
                }
                fds.push(PollFd { fd, events, revents: 0 });
                tokens.push(token);
            }
            let timeout_ms = timeout.map_or(-1i32, |d| {
                i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(0)
            });
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pf, &token) in fds.iter().zip(&tokens) {
                if pf.revents == 0 {
                    continue;
                }
                if token == WAKE_TOKEN {
                    let mut b = [0u8; 64];
                    while unsafe { read(self.pipe_r, b.as_mut_ptr(), 64) } > 0 {}
                    out.push(PollEvent { token, readable: false, writable: false });
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pf.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pf.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Interrupts a concurrent [`wait`](Self::wait); it reports a
        /// [`WAKE_TOKEN`] event.
        pub fn wake(&self) -> io::Result<()> {
            last_os_error_guard(unsafe { write(self.pipe_w, [1u8].as_ptr(), 1) } as i32)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_r);
                close(self.pipe_w);
            }
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn wake_interrupts_wait() {
        let p = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&p);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            p2.wake().unwrap();
        });
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        t.join().unwrap();
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let p = Poller::new().unwrap();
        p.register(server_side.as_raw_fd(), 7, true, false).unwrap();

        client.write_all(b"hello").unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            p.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readable event");
        }
        let mut buf = [0u8; 8];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        p.deregister(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_fires_on_writable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let p = Poller::new().unwrap();
        p.register(client.as_raw_fd(), 3, false, true).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }
}
