//! Measures raw round-trip latency against an in-process server.
use std::sync::Arc;
use std::time::Instant;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::{Db, MemVfs};
use lsm_server::{serve, Conn, Request};

fn main() {
    let env = HardwareEnv::builder().cores(2).build_wall();
    let db = Db::builder(Options::default())
        .env(&env)
        .vfs(Arc::new(MemVfs::new()))
        .open()
        .unwrap();
    let handle = serve(Arc::new(db), "127.0.0.1:0").unwrap();
    let mut conn = Conn::connect(&handle.local_addr().to_string()).unwrap();
    let n = 20000u32;
    let start = Instant::now();
    for _ in 0..n {
        conn.call(&Request::Ping).unwrap();
    }
    let el = start.elapsed();
    println!("ping RTT: {:.1} us/op over {n} ops", el.as_micros() as f64 / f64::from(n));
    let start = Instant::now();
    for i in 0..n {
        conn.call(&Request::Get { key: format!("k{i}").into_bytes() }).unwrap();
    }
    let el = start.elapsed();
    println!("get  RTT: {:.1} us/op over {n} ops", el.as_micros() as f64 / f64::from(n));

    // Preload 100k real keys so gets exercise the full read path.
    {
        let mut conn2 = Conn::connect(&handle.local_addr().to_string()).unwrap();
        for i in 0..100_000u64 {
            let key = format!("{i:016}").into_bytes();
            conn2
                .call(&Request::Put { sync: false, key, value: vec![0xAB; 100] })
                .unwrap();
        }
        conn2.call(&Request::Flush).unwrap();
        conn2.call(&Request::WaitIdle).unwrap();
    }
    let addr = handle.local_addr().to_string();
    let threads = 4;
    let per = 25000u32;
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..threads {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let mut conn = Conn::connect(&addr).unwrap();
            let mut x: u64 = 0x1234_5678 + (t as u64) * 0x9E37;
            for _ in 0..per {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                let k = x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 100_000;
                let key = format!("{k:016}").into_bytes();
                conn.call(&Request::Get { key }).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let el = start.elapsed();
    let total = f64::from(per) * threads as f64;
    println!(
        "4-thread gets: {:.0} ops/s aggregate ({:.1} us/op)",
        total / el.as_secs_f64(),
        el.as_micros() as f64 / total
    );
}
