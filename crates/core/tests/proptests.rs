//! Property-based tests: the evaluator/safeguard pipeline is total over
//! arbitrary model output.

use proptest::prelude::*;

use elmo_tune::{evaluate_response, parse_db_bench_output, vet, SafeguardPolicy};
use lsm_kvs::options::Options;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any string whatsoever can be evaluated and vetted without panics,
    /// and the vetted configuration always validates.
    #[test]
    fn evaluate_and_vet_are_total(text in ".{0,2000}") {
        let eval = evaluate_response(&text);
        let outcome = vet(&Options::default(), &eval.changes, &SafeguardPolicy::default());
        outcome.options.validate().unwrap();
        prop_assert!(!outcome.options.disable_wal);
    }

    /// Structured assignments embedded anywhere in a fenced block are
    /// recovered verbatim.
    #[test]
    fn fenced_assignments_are_recovered(
        prefix in "[a-zA-Z ,.]{0,80}",
        value in 1u64..1u64 << 40,
        suffix in "[a-zA-Z ,.]{0,80}",
    ) {
        let text = format!("{prefix}\n```ini\nwrite_buffer_size={value}\n```\n{suffix}");
        let eval = evaluate_response(&text);
        let change = eval.changes.iter().find(|c| c.name == "write_buffer_size");
        prop_assert!(change.is_some());
        prop_assert_eq!(&change.unwrap().value, &value.to_string());
    }

    /// The benchmark-output parser never panics on arbitrary text.
    #[test]
    fn bench_parser_is_total(text in ".{0,2000}") {
        let _ = parse_db_bench_output(&text);
    }

    /// Throughput round-trips through the report text within 1%.
    #[test]
    fn headline_numbers_roundtrip(tput in 1.0f64..1e7, micros in 0.1f64..1e5) {
        let text = format!(
            "fillrandom   :  {micros:.3} micros/op {} ops/sec 10.0 seconds 1000 operations;",
            tput.round()
        );
        let parsed = parse_db_bench_output(&text).unwrap();
        prop_assert!((parsed.ops_per_sec - tput.round()).abs() <= 1.0);
        prop_assert!((parsed.micros_per_op - micros).abs() / micros < 0.01);
    }

    /// Vetting is monotone in the blacklist: protecting an option can
    /// only shrink the applied set.
    #[test]
    fn protecting_shrinks_applied(seed in any::<u64>()) {
        use llm_client::{ChatRequest, ExpertModel, LanguageModel, QuirkConfig};
        let mut model = ExpertModel::new(seed, QuirkConfig::none());
        let prompt = "2 logical cores, 4 GiB total, SATA HDD, write-intensive workload. \
                      This is iteration 1. Change at most 10 options.";
        let reply = model.complete(&ChatRequest::single_turn("g", prompt)).unwrap();
        let eval = evaluate_response(&reply.content);
        let open = vet(&Options::default(), &eval.changes, &SafeguardPolicy::default());
        let mut strict_policy = SafeguardPolicy::default();
        strict_policy.protect("write_buffer_size");
        strict_policy.protect("max_background_jobs");
        let strict = vet(&Options::default(), &eval.changes, &strict_policy);
        prop_assert!(strict.applied.len() <= open.applied.len());
        prop_assert!(!strict.applied.iter().any(|a| a.name == "write_buffer_size"));
    }
}
