//! Benchmark Parser: extracts key datapoints from db_bench-style text
//! output (paper Fig. 2, "extract key datapoints from benchmark output").
//!
//! The framework deliberately consumes the *textual* report — exactly
//! what the paper's prototype scrapes from db_bench — so the parser must
//! tolerate formatting noise.

/// Key datapoints extracted from one benchmark report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedBench {
    /// Benchmark name (`fillrandom`, ...).
    pub workload: String,
    /// Overall throughput, ops/sec.
    pub ops_per_sec: f64,
    /// Mean microseconds per operation.
    pub micros_per_op: f64,
    /// Operations completed.
    pub ops: u64,
    /// p99 write latency in microseconds, if reported.
    pub p99_write_us: Option<f64>,
    /// p99 read latency in microseconds, if reported.
    pub p99_read_us: Option<f64>,
    /// Block cache hit ratio 0..1, if reported.
    pub cache_hit_ratio: Option<f64>,
    /// Write-stall seconds, if reported.
    pub stall_seconds: Option<f64>,
    /// p99.99 write latency in microseconds, if reported.
    pub p9999_write_us: Option<f64>,
    /// p99.99 read latency in microseconds, if reported.
    pub p9999_read_us: Option<f64>,
    /// Overall write amplification from the `Compaction Stats` Sum row
    /// of a `--stats_dump` block, if present.
    pub write_amp: Option<f64>,
    /// Stall time as percent of uptime from the `DB Stats` block, if
    /// present.
    pub stall_percent: Option<f64>,
    /// The run was aborted early by the monitor.
    pub aborted: bool,
}

impl ParsedBench {
    /// Renders the datapoints as the compact block embedded in prompts.
    pub fn to_prompt_text(&self) -> String {
        let mut out = format!(
            "workload: {}\nthroughput: {:.0} ops/sec\naverage latency: {:.2} micros/op",
            self.workload, self.ops_per_sec, self.micros_per_op
        );
        if let Some(v) = self.p99_write_us {
            out.push_str(&format!("\nP99 write latency: {v:.2} us"));
        }
        if let Some(v) = self.p99_read_us {
            out.push_str(&format!("\nP99 read latency: {v:.2} us"));
        }
        if let Some(v) = self.cache_hit_ratio {
            out.push_str(&format!("\nblock cache hit ratio: {:.1}%", v * 100.0));
        }
        if let Some(v) = self.stall_seconds {
            out.push_str(&format!("\nwrite stall seconds: {v:.3}"));
        }
        if let Some(v) = self.write_amp {
            out.push_str(&format!("\nwrite amplification: {v:.1}x"));
        }
        if let Some(v) = self.stall_percent {
            out.push_str(&format!("\nstall time: {v:.1}% of uptime"));
        }
        if self.aborted {
            out.push_str("\nNOTE: the run was aborted early because throughput collapsed");
        }
        out
    }

    /// The objective value for latency comparison: worst reported p99.
    pub fn worst_p99_us(&self) -> Option<f64> {
        match (self.p99_write_us, self.p99_read_us) {
            (Some(w), Some(r)) => Some(w.max(r)),
            (Some(w), None) => Some(w),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }
}

/// Parses db_bench-style text into [`ParsedBench`].
///
/// Returns `None` when no headline benchmark line is present.
pub fn parse_db_bench_output(text: &str) -> Option<ParsedBench> {
    let mut parsed = ParsedBench::default();
    let mut found_headline = false;
    let mut current_hist: Option<&str> = None;

    for line in text.lines() {
        let t = line.trim();
        if t.contains("micros/op") && t.contains("ops/sec") {
            // "fillrandom   :      3.179 micros/op 314568 ops/sec ..."
            if let Some((name, rest)) = t.split_once(':') {
                parsed.workload = name.trim().to_string();
                let tokens: Vec<&str> = rest.split_whitespace().collect();
                for (i, tok) in tokens.iter().enumerate() {
                    if *tok == "micros/op" && i > 0 {
                        parsed.micros_per_op = tokens[i - 1].parse().unwrap_or(0.0);
                    }
                    if *tok == "ops/sec" && i > 0 {
                        parsed.ops_per_sec = tokens[i - 1].parse().unwrap_or(0.0);
                    }
                    if (*tok == "operations;" || *tok == "operations") && i > 0 {
                        parsed.ops = tokens[i - 1].parse().unwrap_or(0);
                    }
                }
                found_headline = true;
            }
        } else if t.starts_with("Microseconds per ") {
            current_hist = if t.contains("write") {
                Some("write")
            } else if t.contains("read") {
                Some("read")
            } else {
                None
            };
        } else if t.starts_with("Percentiles:") {
            if let Some(p99) = extract_after(t, "P99:") {
                match current_hist {
                    Some("write") => parsed.p99_write_us = Some(p99),
                    Some("read") => parsed.p99_read_us = Some(p99),
                    _ => {}
                }
            }
            if let Some(p9999) = extract_after(t, "P99.99:") {
                match current_hist {
                    Some("write") => parsed.p9999_write_us = Some(p9999),
                    Some("read") => parsed.p9999_read_us = Some(p9999),
                    _ => {}
                }
            }
        } else if t.starts_with("Cumulative stall:") && t.ends_with("percent") {
            parsed.stall_percent = last_number(t);
        } else if t.starts_with("Sum ") || t == "Sum" {
            // `Compaction Stats [default]` aggregate row: the Size column
            // is two tokens, putting W-Amp at index 7.
            let tokens: Vec<&str> = t.split_whitespace().collect();
            if tokens.len() == 10 {
                parsed.write_amp = tokens[7].parse().ok();
            }
        } else if t.contains("cache.hit.ratio") {
            if let Some(v) = last_number(t) {
                parsed.cache_hit_ratio = Some(v / 100.0);
            }
        } else if t.contains("stall.seconds") {
            parsed.stall_seconds = last_number(t);
        } else if t.contains("aborted early") {
            parsed.aborted = true;
        }
    }
    found_headline.then_some(parsed)
}

fn extract_after(text: &str, marker: &str) -> Option<f64> {
    let pos = text.find(marker)?;
    let tail = text[pos + marker.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn last_number(text: &str) -> Option<f64> {
    text.split_whitespace().rev().find_map(|t| t.parse::<f64>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
DB path: [/sim/db]
fillrandom   :      3.179 micros/op 314568 ops/sec 158.940 seconds 50000000 operations;   34.8 MB/s
Microseconds per write:
Count: 50000000 Average: 3.1786
Min: 1.00 Median: 2.53 Max: 123456.00
Percentiles: P50: 2.53 P75: 3.10 P99: 5.82 P99.9: 12.40
------------------------------------------------------
STATISTICS:
rocksdb.block.cache.hit.ratio PERCENT : 42.5
rocksdb.stall.seconds SUM : 1.250
";

    #[test]
    fn parses_headline() {
        let p = parse_db_bench_output(SAMPLE).unwrap();
        assert_eq!(p.workload, "fillrandom");
        assert!((p.ops_per_sec - 314568.0).abs() < 1.0);
        assert!((p.micros_per_op - 3.179).abs() < 1e-6);
        assert_eq!(p.ops, 50_000_000);
    }

    #[test]
    fn parses_percentiles_and_stats() {
        let p = parse_db_bench_output(SAMPLE).unwrap();
        assert_eq!(p.p99_write_us, Some(5.82));
        assert_eq!(p.p99_read_us, None);
        assert_eq!(p.cache_hit_ratio, Some(0.425));
        assert_eq!(p.stall_seconds, Some(1.25));
        assert!(!p.aborted);
    }

    #[test]
    fn read_and_write_histograms_both_captured() {
        let text = "\
readrandomwriterandom :  75.0 micros/op 13217 ops/sec 100 seconds 25000000 operations; (22000000 of 23000000 found)
Microseconds per write:
Percentiles: P50: 10 P75: 20 P99: 57.32 P99.9: 100
Microseconds per read:
Percentiles: P50: 200 P75: 800 P99: 1463.61 P99.9: 3000
";
        let p = parse_db_bench_output(text).unwrap();
        assert_eq!(p.p99_write_us, Some(57.32));
        assert_eq!(p.p99_read_us, Some(1463.61));
        assert_eq!(p.worst_p99_us(), Some(1463.61));
    }

    /// The post-observability output shape: StdDev on the count line,
    /// P99.99 in the percentiles, and a `--stats_dump` block appended.
    const SAMPLE_WITH_DUMP: &str = "\
DB path: [/sim/db]
fillrandom   :      3.179 micros/op 314568 ops/sec 158.940 seconds 50000000 operations;   34.8 MB/s
Microseconds per write:
Count: 50000000 Average: 3.1786 StdDev: 0.85
Min: 1.00 Median: 2.53 Max: 123456.00
Percentiles: P50: 2.53 P75: 3.10 P99: 5.82 P99.9: 12.40 P99.99: 44.10
------------------------------------------------------
** DB Stats **
Uptime(secs): 158.9 total
Cumulative writes: 50000000 writes, 50000000 keys, 50000000 commit groups, 1.0 writes per commit group, ingest: 5.12 GB, 33.01 MB/s
Cumulative WAL: 50000000 writes, 12 syncs, 4166666.67 writes per sync, written: 5.40 GB
Cumulative stall: 00:00:12.500 H:M:S, 7.9 percent

** Compaction Stats [default] **
Level    Files         Size   Score  Read(GB)  Write(GB)  W-Amp  Comp(cnt)   KeyDrop
------------------------------------------------------------------------------------
   L0        4     12.00 MB    0.80      0.00       0.50    1.0         12         0
   L1       10     60.00 MB    0.60      1.20       1.10    0.9          7       123
  Sum       14     72.00 MB    0.00      1.20       1.60    1.3         19       123
";

    #[test]
    fn parses_stats_dump_sections() {
        let p = parse_db_bench_output(SAMPLE_WITH_DUMP).unwrap();
        assert_eq!(p.p99_write_us, Some(5.82));
        assert_eq!(p.p9999_write_us, Some(44.10));
        assert_eq!(p.stall_percent, Some(7.9));
        assert_eq!(p.write_amp, Some(1.3));
        let text = p.to_prompt_text();
        assert!(text.contains("write amplification: 1.3x"));
        assert!(text.contains("stall time: 7.9% of uptime"));
    }

    #[test]
    fn old_histogram_shape_still_parses() {
        // Pre-StdDev/P99.99 output must keep parsing (the new fields
        // just stay None).
        let p = parse_db_bench_output(SAMPLE).unwrap();
        assert_eq!(p.p99_write_us, Some(5.82));
        assert_eq!(p.p9999_write_us, None);
        assert_eq!(p.write_amp, None);
        assert_eq!(p.stall_percent, None);
    }

    #[test]
    fn aborted_flag_detected() {
        let text = "x : 1.0 micros/op 10 ops/sec 1 seconds 10 operations;\nWARNING: benchmark aborted early by monitor\n";
        assert!(parse_db_bench_output(text).unwrap().aborted);
    }

    #[test]
    fn garbage_returns_none() {
        assert!(parse_db_bench_output("nothing to see here").is_none());
        assert!(parse_db_bench_output("").is_none());
    }

    #[test]
    fn roundtrips_with_real_report() {
        // End-to-end: run a tiny benchmark, render, parse.
        use db_bench::{run_benchmark, BenchmarkSpec};
        use lsm_kvs::{options::Options, Db};
        let env = hw_sim::HardwareEnv::builder().build_sim();
        let db = Db::builder(Options::default()).env(&env).open().unwrap();
        let mut spec = BenchmarkSpec::fillrandom(1.0);
        spec.num_ops = 2_000;
        spec.key_space = 2_000;
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        let text = report.to_db_bench_text();
        let parsed = parse_db_bench_output(&text).unwrap();
        assert_eq!(parsed.workload, "fillrandom");
        assert!((parsed.ops_per_sec - report.ops_per_sec).abs() / report.ops_per_sec < 0.01);
        assert!(parsed.p99_write_us.is_some());
    }

    #[test]
    fn prompt_text_lists_key_numbers() {
        let p = parse_db_bench_output(SAMPLE).unwrap();
        let text = p.to_prompt_text();
        assert!(text.contains("throughput: 314568 ops/sec"));
        assert!(text.contains("P99 write latency: 5.82 us"));
        assert!(text.contains("stall seconds: 1.250"));
    }
}
