//! `live_tune` — retune a **running** `kv_server` without restarting it.
//!
//! Points the ELMo-Tune feedback loop at a live server via
//! [`elmo_tune::LiveTarget`]: each vetted option diff travels over the
//! SetOptions RPC (no reopen), throughput is measured from the server's
//! own ticker deltas across wall-clock windows (Stats RPC), and the
//! flagger's keep/revert decision rolls rejected candidates back over
//! the same wire.
//!
//! ```text
//! live_tune --addr host:port [--iters N] [--window-ms MS]
//!           [--cores N] [--mem-gib N] [--device nvme|ssd|hdd]
//!           [--model scripted|expert|http:HOST:PORT] [--seed N]
//!           [--start-option k=v]...
//! ```
//!
//! `--start-option` must mirror any `--option` flags the server was
//! launched with, so the loop's view of the live configuration starts
//! correct. The default scripted model proposes a small mutable batch
//! (plus one immutable option, to demonstrate live rejection), which
//! makes the demo deterministic enough for CI.

use std::time::Duration;

use db_bench::BenchmarkSpec;
use elmo_tune::{EnvSpec, LiveTarget, TuningConfig, TuningSession};
use hw_sim::DeviceModel;
use llm_client::{ExpertModel, HttpChatModel, LanguageModel, QuirkConfig, ScriptedModel};
use lsm_kvs::options::Options;
use lsm_server::RemoteDb;

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("live_tune: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut addr: Option<String> = None;
    let mut iters = 2usize;
    let mut window_ms = 1000u64;
    let mut cores = 4usize;
    let mut mem_gib = 8u64;
    let mut device = DeviceModel::nvme_ssd();
    let mut model_spec = "scripted".to_string();
    let mut seed = 42u64;
    let mut start = Options::default();

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]).into())
        };
        match args[i].as_str() {
            "--addr" => addr = Some(take(&mut i)?),
            "--iters" => iters = take(&mut i)?.parse()?,
            "--window-ms" => window_ms = take(&mut i)?.parse()?,
            "--cores" => cores = take(&mut i)?.parse()?,
            "--mem-gib" => mem_gib = take(&mut i)?.parse()?,
            "--device" => {
                device = match take(&mut i)?.as_str() {
                    "nvme" => DeviceModel::nvme_ssd(),
                    "ssd" | "sata_ssd" => DeviceModel::sata_ssd(),
                    "hdd" => DeviceModel::sata_hdd(),
                    other => return Err(format!("unknown device: {other}").into()),
                }
            }
            "--model" => model_spec = take(&mut i)?,
            "--seed" => seed = take(&mut i)?.parse()?,
            "--start-option" => {
                let kv = take(&mut i)?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--start-option wants name=value, got {kv}"))?;
                start.set_by_name(k, v)?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: live_tune --addr HOST:PORT [--iters N] [--window-ms MS] \
                     [--cores N] [--mem-gib N] [--device nvme|ssd|hdd] \
                     [--model scripted|expert|http:HOST:PORT] [--seed N] \
                     [--start-option k=v]..."
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }
    let addr = addr.ok_or("--addr HOST:PORT is required (use --help)")?;

    let mut model: Box<dyn LanguageModel> = match model_spec.as_str() {
        // Deterministic demo script: one mutable batch with an immutable
        // option mixed in (the live layer must reject it by name and
        // still land the rest), then a second mutable-only batch.
        "scripted" => Box::new(ScriptedModel::new(vec![
            "```ini\nmax_background_jobs=6\nwrite_buffer_size=128MB\nnum_shards=8\n```"
                .to_string(),
            "```ini\nlevel0_slowdown_writes_trigger=24\nlevel0_stop_writes_trigger=40\n```"
                .to_string(),
        ])),
        "expert" => Box::new(ExpertModel::new(seed, QuirkConfig::default())),
        other => match other.strip_prefix("http:") {
            Some(hostport) => {
                let (host, port) = hostport
                    .rsplit_once(':')
                    .ok_or_else(|| format!("--model http: wants HOST:PORT, got {hostport}"))?;
                Box::new(HttpChatModel::new(host, port.parse()?))
            }
            None => return Err(format!("unknown model: {other}").into()),
        },
    };

    let env_spec = EnvSpec {
        cores,
        mem_gib,
        device,
    };
    let remote = RemoteDb::connect(&addr)?;
    let mut target = LiveTarget::new(remote, env_spec.clone(), Duration::from_millis(window_ms));

    let config = TuningConfig {
        iterations: iters,
        early_stop: false, // no in-run monitor over the wire
        include_stats_dump: true,
        ..TuningConfig::default()
    };
    // The spec is nominal: LiveTarget supplies workload/environment text.
    let spec = BenchmarkSpec::fillrandom(1.0);
    let report = TuningSession::new(env_spec, spec, model.as_mut())
        .with_config(config)
        .run_with_target(&mut target, start)?;

    println!("live retune of {addr}: {}", report.environment);
    println!("{}", report.iteration_series_text());
    for (i, w) in target.windows().iter().enumerate() {
        let mix = match (w.write_fraction, w.drift) {
            (Some(wf), Some(dr)) => format!("write fraction {wf:.2} (drift {dr:+.2})"),
            _ => "idle window".to_string(),
        };
        let skipped = if w.skipped_immutable.is_empty() {
            String::new()
        } else {
            format!(", rejected immutable: {}", w.skipped_immutable.join(", "))
        };
        println!(
            "window {i}: {:.0} ops/sec ({} writes / {} reads), {mix}, \
             options_changed +{}{skipped}",
            w.ops_per_sec, w.writes, w.reads, w.options_changed_delta
        );
    }
    let applied: usize = report.records.iter().map(|r| r.applied.len()).sum();
    let live_changes: u64 = target.windows().iter().map(|w| w.options_changed_delta).sum();
    println!(
        "applied {applied} option change(s) across {} iteration(s); \
         server confirmed {live_changes} live batch(es) via options_changed",
        report.records.len()
    );
    println!("final configuration delta vs start:");
    let final_diff = Options::default().diff(&report.final_options);
    if final_diff.is_empty() {
        println!("  (none — every candidate was reverted)");
    } else {
        for (name, from, to) in final_diff {
            println!("  {name}: {from} -> {to}");
        }
    }
    Ok(())
}
