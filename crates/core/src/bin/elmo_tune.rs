//! `elmo_tune` — run a full tuning session from the command line.
//!
//! The paper's usage model: "the user is only responsible for starting it
//! with an expected system workload".
//!
//! ```text
//! elmo_tune --workload fillrandom --device hdd --cores 2 --mem-gib 4 \
//!           [--iters 7] [--scale 0.01] [--model expert|expert-clean|http:HOST:PORT] \
//!           [--out tuned_options.ini]
//! ```

use db_bench::BenchmarkSpec;
use elmo_tune::{EnvSpec, TuningConfig, TuningSession};
use hw_sim::DeviceModel;
use llm_client::{ExpertModel, HttpChatModel, LanguageModel, QuirkConfig};
use lsm_kvs::options::{ini, Options};

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("elmo_tune: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut workload = "fillrandom".to_string();
    let mut device = DeviceModel::nvme_ssd();
    let mut cores = 4usize;
    let mut mem_gib = 4u64;
    let mut iters = 7usize;
    let mut scale = 0.01f64;
    let mut model_spec = "expert".to_string();
    let mut seed = 42u64;
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]).into())
        };
        match args[i].as_str() {
            "--workload" => workload = take(&mut i)?,
            "--device" => {
                device = match take(&mut i)?.as_str() {
                    "nvme" => DeviceModel::nvme_ssd(),
                    "ssd" | "sata_ssd" => DeviceModel::sata_ssd(),
                    "hdd" => DeviceModel::sata_hdd(),
                    other => return Err(format!("unknown device: {other}").into()),
                }
            }
            "--cores" => cores = take(&mut i)?.parse()?,
            "--mem-gib" => mem_gib = take(&mut i)?.parse()?,
            "--iters" => iters = take(&mut i)?.parse()?,
            "--scale" => scale = take(&mut i)?.parse()?,
            "--seed" => seed = take(&mut i)?.parse()?,
            "--model" => model_spec = take(&mut i)?,
            "--out" => out = Some(take(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "usage: elmo_tune [--workload fillrandom|readrandom|readrandomwriterandom|mixgraph] \
                     [--device nvme|ssd|hdd] [--cores N] [--mem-gib N] [--iters N] [--scale F] \
                     [--seed N] [--model expert|expert-clean|http:HOST:PORT] [--out FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }

    let spec = match workload.as_str() {
        "fillrandom" | "fr" => BenchmarkSpec::fillrandom(scale),
        "readrandom" | "rr" => BenchmarkSpec::readrandom(scale),
        "readrandomwriterandom" | "rrwr" => BenchmarkSpec::readrandomwriterandom(scale),
        "mixgraph" | "mix" => BenchmarkSpec::mixgraph(scale),
        other => return Err(format!("unknown workload: {other}").into()),
    };

    let mut model: Box<dyn LanguageModel> = if model_spec == "expert" {
        Box::new(ExpertModel::new(seed, QuirkConfig::default()))
    } else if model_spec == "expert-clean" {
        Box::new(ExpertModel::well_behaved(seed))
    } else if let Some(rest) = model_spec.strip_prefix("http:") {
        let (host, port) = rest
            .rsplit_once(':')
            .ok_or("http model wants http:HOST:PORT")?;
        Box::new(HttpChatModel::new(host, port.parse()?))
    } else {
        return Err(format!("unknown model: {model_spec}").into());
    };

    let env = EnvSpec {
        cores,
        mem_gib,
        device,
    };
    eprintln!(
        "ELMo-Tune: {} on {} with model '{}' ({} iterations, scale {scale})",
        spec.describe(),
        env.describe(),
        model.name(),
        iters
    );
    let report = TuningSession::new(env, spec, model.as_mut())
        .with_config(TuningConfig {
            iterations: iters,
            ..TuningConfig::default()
        })
        .run(Options::default())?;

    println!("{}", report.iteration_series_text());
    println!("Option trajectory:\n{}", report.table5_text());
    println!(
        "Summary: {:.0} -> {:.0} ops/sec ({:.2}x); best iteration {}",
        report.baseline.ops_per_sec,
        report.best.ops_per_sec,
        report.throughput_improvement(),
        report.best_iteration
    );
    if let Some(path) = out {
        std::fs::write(&path, ini::to_ini(&report.final_options))?;
        println!("Tuned configuration written to {path}");
    }
    Ok(())
}
