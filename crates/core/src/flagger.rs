//! Active Flagger: keep/revert decisions plus the in-run benchmark
//! monitor with early stop.
//!
//! Paper §4.2: the flagger "compares [the benchmark result] with the
//! previous iteration's performance values and determines if the changes
//! enhance performance. If there's an improvement, the new configuration
//! is kept. Otherwise, ELMO-Tune reverts to the previous option file" —
//! and a "constant benchmark monitor" aborts runs whose performance
//! collapses ("early stop and 'redo' on performance drop", first check
//! after ~30 seconds).

use db_bench::{MonitorControl, MonitorSample};

use crate::bench_text::ParsedBench;

/// What the tuner optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Maximize operations per second.
    #[default]
    Throughput,
    /// Minimize the worst reported p99 latency.
    P99Latency,
}

/// The flagger's decision for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate improved on the best-so-far: keep its options.
    Keep,
    /// The candidate regressed: restore the previous options.
    Revert,
}

/// Compares iteration results and issues verdicts.
#[derive(Debug, Clone)]
pub struct ActiveFlagger {
    /// Optimization objective.
    pub objective: Objective,
    /// Relative improvement required to call it a win (e.g. 0.005).
    pub min_improvement: f64,
}

impl Default for ActiveFlagger {
    fn default() -> Self {
        ActiveFlagger {
            objective: Objective::Throughput,
            min_improvement: 0.005,
        }
    }
}

impl ActiveFlagger {
    /// Scores a result under the objective (higher is better).
    pub fn score(&self, result: &ParsedBench) -> f64 {
        match self.objective {
            Objective::Throughput => result.ops_per_sec,
            Objective::P99Latency => {
                let p99 = result.worst_p99_us().unwrap_or(f64::MAX);
                if p99 <= 0.0 {
                    0.0
                } else {
                    1e9 / p99
                }
            }
        }
    }

    /// Judges a candidate against the best result so far.
    pub fn judge(&self, best: &ParsedBench, candidate: &ParsedBench) -> Verdict {
        if candidate.aborted {
            return Verdict::Revert;
        }
        let best_score = self.score(best);
        let cand_score = self.score(candidate);
        if cand_score > best_score * (1.0 + self.min_improvement) {
            Verdict::Keep
        } else {
            Verdict::Revert
        }
    }
}

/// The in-run benchmark monitor: aborts a run when interval throughput
/// collapses below a fraction of the reference (best-so-far) rate.
#[derive(Debug)]
pub struct EarlyStopMonitor {
    /// Ignore samples before this many simulated seconds (the paper's
    /// "first 30s" check gate).
    pub warmup_secs: f64,
    /// Reference throughput (best so far), ops/sec.
    pub reference_ops_per_sec: f64,
    /// Abort when interval throughput falls below this fraction of the
    /// reference.
    pub min_fraction: f64,
    /// Consecutive bad samples required before aborting.
    pub patience: usize,
    bad_samples: usize,
    triggered: bool,
}

impl EarlyStopMonitor {
    /// Creates a monitor with the paper-like defaults (first check after
    /// 30 simulated seconds, abort below 40% of the reference).
    pub fn new(reference_ops_per_sec: f64) -> Self {
        EarlyStopMonitor {
            warmup_secs: 30.0,
            reference_ops_per_sec,
            min_fraction: 0.4,
            patience: 3,
            bad_samples: 0,
            triggered: false,
        }
    }

    /// Whether the monitor aborted the run.
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Processes one sample; returns the control decision.
    pub fn observe(&mut self, sample: &MonitorSample) -> MonitorControl {
        if self.reference_ops_per_sec <= 0.0 || sample.at_secs < self.warmup_secs {
            return MonitorControl::Continue;
        }
        if sample.interval_ops_per_sec < self.reference_ops_per_sec * self.min_fraction {
            self.bad_samples += 1;
            if self.bad_samples >= self.patience {
                self.triggered = true;
                return MonitorControl::Stop;
            }
        } else {
            self.bad_samples = 0;
        }
        MonitorControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(tput: f64, p99w: Option<f64>, p99r: Option<f64>) -> ParsedBench {
        ParsedBench {
            workload: "x".into(),
            ops_per_sec: tput,
            micros_per_op: 1e6 / tput,
            ops: 1000,
            p99_write_us: p99w,
            p99_read_us: p99r,
            cache_hit_ratio: None,
            stall_seconds: None,
            aborted: false,
            ..ParsedBench::default()
        }
    }

    #[test]
    fn keeps_improvements_reverts_regressions() {
        let f = ActiveFlagger::default();
        let best = bench(100_000.0, Some(10.0), None);
        assert_eq!(f.judge(&best, &bench(120_000.0, Some(9.0), None)), Verdict::Keep);
        assert_eq!(f.judge(&best, &bench(80_000.0, Some(9.0), None)), Verdict::Revert);
        // Within the noise threshold: revert (only beneficial changes kept).
        assert_eq!(f.judge(&best, &bench(100_100.0, Some(9.0), None)), Verdict::Revert);
    }

    #[test]
    fn aborted_candidates_always_revert() {
        let f = ActiveFlagger::default();
        let best = bench(100.0, None, None);
        let mut cand = bench(1e9, None, None);
        cand.aborted = true;
        assert_eq!(f.judge(&best, &cand), Verdict::Revert);
    }

    #[test]
    fn p99_objective_prefers_lower_latency() {
        let f = ActiveFlagger {
            objective: Objective::P99Latency,
            min_improvement: 0.005,
        };
        let best = bench(100.0, Some(100.0), Some(500.0));
        let better = bench(50.0, Some(90.0), Some(200.0)); // slower but tighter tail
        assert_eq!(f.judge(&best, &better), Verdict::Keep);
    }

    fn sample(at: f64, rate: f64) -> MonitorSample {
        MonitorSample {
            at_secs: at,
            interval_ops: rate as u64,
            interval_ops_per_sec: rate,
            cpu_util_percent: 0.0,
            mem_pressure: 0.0,
        }
    }

    #[test]
    fn early_stop_ignores_warmup() {
        let mut m = EarlyStopMonitor::new(100_000.0);
        for i in 0..29 {
            assert_eq!(m.observe(&sample(i as f64, 10.0)), MonitorControl::Continue);
        }
        assert!(!m.triggered());
    }

    #[test]
    fn early_stop_fires_after_patience() {
        let mut m = EarlyStopMonitor::new(100_000.0);
        assert_eq!(m.observe(&sample(31.0, 10_000.0)), MonitorControl::Continue);
        assert_eq!(m.observe(&sample(32.0, 10_000.0)), MonitorControl::Continue);
        assert_eq!(m.observe(&sample(33.0, 10_000.0)), MonitorControl::Stop);
        assert!(m.triggered());
    }

    #[test]
    fn recovery_resets_patience() {
        let mut m = EarlyStopMonitor::new(100_000.0);
        m.observe(&sample(31.0, 10_000.0));
        m.observe(&sample(32.0, 10_000.0));
        m.observe(&sample(33.0, 90_000.0)); // healthy again
        m.observe(&sample(34.0, 10_000.0));
        assert_eq!(m.observe(&sample(35.0, 10_000.0)), MonitorControl::Continue);
        assert!(!m.triggered());
    }

    #[test]
    fn no_reference_means_no_stop() {
        let mut m = EarlyStopMonitor::new(0.0);
        for i in 30..100 {
            assert_eq!(m.observe(&sample(i as f64, 1.0)), MonitorControl::Continue);
        }
    }
}
