//! Safeguard Enforcer: vetting LLM-proposed changes before they reach
//! the store.
//!
//! Paper §4.2: "a configurable blacklist that ensures no necessary
//! options are modified, and a format checker that ensures only
//! specifically formatted LLM output is accepted." We add the two
//! validation layers that naturally fall out of the option registry —
//! unknown-option (hallucination) detection and type/range checking —
//! plus an optional memory-budget rule.

use std::collections::HashSet;

use lsm_kvs::options::registry::{all_options, find_deprecated, find_option};
use lsm_kvs::options::Options;

use crate::evaluate::ProposedChange;

/// Why a proposed change was rejected (or adjusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The option does not exist (hallucination).
    UnknownOption,
    /// The option is deprecated/retired upstream.
    Deprecated,
    /// The option is on the blacklist (journaling/crash-safety etc.).
    Protected,
    /// The value failed to parse or is out of range.
    InvalidValue,
    /// Applying the change would blow the memory budget; it was adjusted.
    BudgetAdjusted,
}

/// One safeguard decision about a proposed change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Option name as proposed.
    pub name: String,
    /// Value as proposed.
    pub value: String,
    /// Classification.
    pub kind: ViolationKind,
    /// Human-readable detail (fed back into the next prompt).
    pub detail: String,
}

impl Violation {
    /// Renders for the "rejected suggestions" prompt section.
    pub fn to_feedback_line(&self) -> String {
        format!("- {}={} rejected: {}", self.name, self.value, self.detail)
    }
}

/// An accepted change, with old and new canonical values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedChange {
    /// Canonical option name (post alias/deprecation remapping).
    pub name: String,
    /// Previous canonical value.
    pub from: String,
    /// New canonical value.
    pub to: String,
}

/// Safeguard configuration.
#[derive(Debug, Clone)]
pub struct SafeguardPolicy {
    blacklist: HashSet<String>,
    /// Remap deprecated options with a known replacement instead of
    /// rejecting them.
    pub remap_deprecated: bool,
    /// Total RAM in bytes; when set, write buffers + block cache are kept
    /// under ~80% of it by shrinking the cache.
    pub memory_budget: Option<u64>,
}

impl Default for SafeguardPolicy {
    fn default() -> Self {
        let blacklist = all_options()
            .iter()
            .filter(|m| m.protected_by_default)
            .map(|m| m.name.to_string())
            .collect();
        SafeguardPolicy {
            blacklist,
            remap_deprecated: true,
            memory_budget: None,
        }
    }
}

impl SafeguardPolicy {
    /// A policy with the default blacklist and a memory budget.
    pub fn with_memory_budget(total_ram_bytes: u64) -> Self {
        SafeguardPolicy {
            memory_budget: Some(total_ram_bytes),
            ..SafeguardPolicy::default()
        }
    }

    /// Adds an option to the blacklist.
    pub fn protect(&mut self, name: impl Into<String>) -> &mut Self {
        self.blacklist.insert(name.into());
        self
    }

    /// Removes an option from the blacklist (e.g. a user who accepts
    /// running without a WAL).
    pub fn unprotect(&mut self, name: &str) -> &mut Self {
        self.blacklist.remove(name);
        self
    }

    /// Whether an option is protected.
    pub fn is_protected(&self, name: &str) -> bool {
        self.blacklist.iter().any(|b| b.eq_ignore_ascii_case(name))
    }
}

/// Outcome of vetting one response's proposals.
#[derive(Debug, Clone)]
pub struct VetOutcome {
    /// The configuration with all accepted changes applied.
    pub options: Options,
    /// Accepted changes (name, from, to).
    pub applied: Vec<AppliedChange>,
    /// Rejected/adjusted proposals.
    pub violations: Vec<Violation>,
}

/// Vets `changes` against `policy`, starting from `base`.
pub fn vet(base: &Options, changes: &[ProposedChange], policy: &SafeguardPolicy) -> VetOutcome {
    let mut options = base.clone();
    let mut applied = Vec::new();
    let mut violations = Vec::new();

    for change in changes {
        // 1. Blacklist (checked against the proposed name *and* its
        //    canonical form so aliases cannot sneak past).
        let canonical_name = find_option(&change.name).map(|m| m.name).unwrap_or(&change.name);
        if policy.is_protected(&change.name) || policy.is_protected(canonical_name) {
            violations.push(Violation {
                name: change.name.clone(),
                value: change.value.clone(),
                kind: ViolationKind::Protected,
                detail: "protected option (crash-safety/journaling must not be modified)".into(),
            });
            continue;
        }

        // 2. Known / deprecated / hallucinated.
        let target_name = match find_option(&change.name) {
            Some(meta) => meta.name.to_string(),
            None => match find_deprecated(&change.name) {
                Some(dep) => {
                    if let (true, Some(target)) = (policy.remap_deprecated, dep.remap_to) {
                        violations.push(Violation {
                            name: change.name.clone(),
                            value: change.value.clone(),
                            kind: ViolationKind::Deprecated,
                            detail: format!("deprecated ({}); remapped to {target}", dep.note),
                        });
                        target.to_string()
                    } else {
                        violations.push(Violation {
                            name: change.name.clone(),
                            value: change.value.clone(),
                            kind: ViolationKind::Deprecated,
                            detail: format!("deprecated: {}", dep.note),
                        });
                        continue;
                    }
                }
                None => {
                    violations.push(Violation {
                        name: change.name.clone(),
                        value: change.value.clone(),
                        kind: ViolationKind::UnknownOption,
                        detail: "unknown option — possibly hallucinated".into(),
                    });
                    continue;
                }
            },
        };

        // 3. Type/range validation via the registry.
        let before = options.get_by_name(&target_name).unwrap_or_default();
        match options.set_by_name(&target_name, &change.value) {
            Ok(()) => {
                let after = options.get_by_name(&target_name).unwrap_or_default();
                if before != after {
                    applied.push(AppliedChange {
                        name: target_name,
                        from: before,
                        to: after,
                    });
                }
            }
            Err(e) => {
                violations.push(Violation {
                    name: change.name.clone(),
                    value: change.value.clone(),
                    kind: ViolationKind::InvalidValue,
                    detail: e.to_string(),
                });
            }
        }
    }

    // 4. Cross-option validation: reject the whole candidate back to the
    //    base configuration if invariants broke (e.g. inverted triggers).
    if let Err(e) = options.validate() {
        violations.push(Violation {
            name: "(combined configuration)".into(),
            value: String::new(),
            kind: ViolationKind::InvalidValue,
            detail: format!("combination rejected: {e}"),
        });
        // Re-apply changes one by one, keeping only those that validate.
        options = base.clone();
        let mut kept = Vec::new();
        for change in &applied {
            let mut candidate = options.clone();
            if candidate.set_by_name(&change.name, &change.to).is_ok()
                && candidate.validate().is_ok()
            {
                options = candidate;
                kept.push(change.clone());
            }
        }
        applied = kept;
    }

    // 5. Memory budget: shrink the block cache if buffers + cache exceed
    //    ~80% of RAM.
    if let Some(ram) = policy.memory_budget {
        let budget = (ram as f64 * 0.8) as u64;
        let buffers = options
            .write_buffer_size
            .saturating_mul(options.max_write_buffer_number.max(1) as u64);
        let total = buffers + options.block_cache_size;
        if total > budget {
            let new_cache = budget.saturating_sub(buffers).max(8 << 20);
            if new_cache < options.block_cache_size {
                violations.push(Violation {
                    name: "block_cache_size".into(),
                    value: options.block_cache_size.to_string(),
                    kind: ViolationKind::BudgetAdjusted,
                    detail: format!(
                        "write buffers + cache exceeded 80% of {} RAM; cache shrunk to {}",
                        lsm_kvs::options::registry::parse_size(&ram.to_string())
                            .map(|_| format!("{} MiB", ram >> 20))
                            .unwrap_or_default(),
                        new_cache
                    ),
                });
                options.block_cache_size = new_cache;
                applied.retain(|a| a.name != "block_cache_size");
                applied.push(AppliedChange {
                    name: "block_cache_size".into(),
                    from: base.block_cache_size.to_string(),
                    to: new_cache.to_string(),
                });
            }
        }
    }

    VetOutcome {
        options,
        applied,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ChangeOrigin;

    fn change(name: &str, value: &str) -> ProposedChange {
        ProposedChange {
            name: name.into(),
            value: value.into(),
            origin: ChangeOrigin::CodeBlock,
        }
    }

    #[test]
    fn valid_changes_apply() {
        let base = Options::default();
        let out = vet(
            &base,
            &[change("write_buffer_size", "32MB"), change("max_background_jobs", "4")],
            &SafeguardPolicy::default(),
        );
        assert_eq!(out.options.write_buffer_size, 32 << 20);
        assert_eq!(out.options.max_background_jobs, 4);
        assert_eq!(out.applied.len(), 2);
        assert!(out.violations.is_empty());
        assert_eq!(out.applied[0].from, (64u64 << 20).to_string());
    }

    #[test]
    fn protected_options_blocked() {
        let base = Options::default();
        let out = vet(&base, &[change("disable_wal", "true")], &SafeguardPolicy::default());
        assert!(!out.options.disable_wal, "WAL stays on");
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::Protected);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn unprotect_allows_expert_users() {
        let base = Options::default();
        let mut policy = SafeguardPolicy::default();
        policy.unprotect("disable_wal");
        let out = vet(&base, &[change("disable_wal", "true")], &policy);
        assert!(out.options.disable_wal);
    }

    #[test]
    fn hallucinated_options_detected() {
        let base = Options::default();
        let out = vet(
            &base,
            &[change("memtable_accelerator_mode", "true")],
            &SafeguardPolicy::default(),
        );
        assert_eq!(out.violations[0].kind, ViolationKind::UnknownOption);
        assert!(out.violations[0].to_feedback_line().contains("hallucinated"));
    }

    #[test]
    fn deprecated_options_remapped_or_rejected() {
        let base = Options::default();
        let policy = SafeguardPolicy::default();
        let out = vet(&base, &[change("base_background_compactions", "3")], &policy);
        assert_eq!(out.options.max_background_compactions, 3, "remapped");
        assert_eq!(out.violations[0].kind, ViolationKind::Deprecated);

        let out = vet(&base, &[change("soft_rate_limit", "0.5")], &policy);
        assert_eq!(out.applied.len(), 0, "no remap target: rejected");
        assert_eq!(out.violations[0].kind, ViolationKind::Deprecated);
    }

    #[test]
    fn invalid_values_rejected() {
        let base = Options::default();
        let out = vet(
            &base,
            &[
                change("max_background_jobs", "4096"),
                change("write_buffer_size", "enormous"),
                change("bloom_filter_bits_per_key", "-5"),
            ],
            &SafeguardPolicy::default(),
        );
        assert_eq!(out.violations.len(), 3);
        assert!(out.violations.iter().all(|v| v.kind == ViolationKind::InvalidValue));
        assert_eq!(out.options, base);
    }

    #[test]
    fn inconsistent_combination_partially_recovered() {
        let base = Options::default();
        // Slowdown above stop is invalid together; each alone is fine.
        let out = vet(
            &base,
            &[
                change("level0_slowdown_writes_trigger", "100"),
                change("max_background_jobs", "4"),
            ],
            &SafeguardPolicy::default(),
        );
        assert!(out
            .violations
            .iter()
            .any(|v| v.detail.contains("combination rejected")));
        // The independent change survives the re-application pass.
        assert_eq!(out.options.max_background_jobs, 4);
        assert_eq!(out.options.level0_slowdown_writes_trigger, 20, "invalid combo dropped");
    }

    #[test]
    fn memory_budget_shrinks_cache() {
        let base = Options::default();
        let policy = SafeguardPolicy::with_memory_budget(4 << 30);
        let out = vet(
            &base,
            &[
                change("write_buffer_size", "512MB"),
                change("max_write_buffer_number", "4"),
                change("block_cache_size", "3GB"),
            ],
            &policy,
        );
        assert!(out
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::BudgetAdjusted));
        let total = out.options.write_buffer_size * out.options.max_write_buffer_number as u64
            + out.options.block_cache_size;
        assert!(total <= (4u64 << 30) * 8 / 10 + (8 << 20));
    }

    #[test]
    fn alias_cannot_bypass_blacklist() {
        let base = Options::default();
        let out = vet(&base, &[change("disableWAL", "true")], &SafeguardPolicy::default());
        assert!(!out.options.disable_wal);
        assert_eq!(out.violations[0].kind, ViolationKind::Protected);
    }

    #[test]
    fn noop_changes_not_recorded_as_applied() {
        let base = Options::default();
        let out = vet(&base, &[change("write_buffer_size", "64MB")], &SafeguardPolicy::default());
        assert!(out.applied.is_empty(), "same value as default");
        assert!(out.violations.is_empty());
    }
}
