//! # elmo-tune — LLM-driven auto-tuning for LSM-based key-value stores
//!
//! A Rust reproduction of **ELMo-Tune** ("Can Modern LLMs Tune and
//! Configure LSM-based Key-Value Stores?", HotStorage '24): a feedback
//! loop in which a language model iteratively rewrites the store's
//! option file, guided by prompts that interlace hardware information,
//! workload statistics, the current configuration, and benchmark
//! results.
//!
//! The four framework modules of the paper map to:
//!
//! | Paper module       | Here |
//! |--------------------|------|
//! | Prompt Generator   | [`prompt`] |
//! | Option Evaluator   | [`evaluate`] |
//! | Active Flagger     | [`flagger`] (+ the early-stop benchmark monitor) |
//! | Safeguard Enforcer | [`safeguard`] |
//! | Benchmark Parser   | [`bench_text`] |
//! | Feedback loop      | [`session`] |
//!
//! The loop measures through a [`TuningTarget`]: [`OfflineTarget`]
//! reopens a database per candidate (the paper's cycle), while
//! [`LiveTarget`] retunes a **running** `kv_server` over the wire — the
//! SetOptions RPC applies each vetted diff without a reopen and
//! throughput comes from Stats-RPC ticker deltas (see [`target`]).
//!
//! ## Example
//!
//! ```
//! use elmo_tune::{EnvSpec, TuningConfig, TuningSession};
//! use db_bench::BenchmarkSpec;
//! use llm_client::ExpertModel;
//! use lsm_kvs::options::Options;
//!
//! # fn main() -> Result<(), elmo_tune::SessionError> {
//! let mut model = ExpertModel::well_behaved(42);
//! let mut spec = BenchmarkSpec::fillrandom(1.0);
//! spec.num_ops = 5_000; // scaled down for the doctest
//! spec.key_space = 5_000;
//! let report = TuningSession::new(EnvSpec::paper_default(), spec, &mut model)
//!     .with_config(TuningConfig { iterations: 1, ..TuningConfig::default() })
//!     .run(Options::default())?;
//! assert!(report.baseline.ops_per_sec > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bench_text;
pub mod evaluate;
pub mod flagger;
pub mod prompt;
pub mod safeguard;
pub mod session;
pub mod target;

pub use bench_text::{parse_db_bench_output, ParsedBench};
pub use evaluate::{evaluate_response, ChangeOrigin, Evaluation, ProposedChange};
pub use flagger::{ActiveFlagger, EarlyStopMonitor, Objective, Verdict};
pub use prompt::{build_tuning_prompt, PromptBuilder, PromptContext, PromptSection};
pub use safeguard::{vet, AppliedChange, SafeguardPolicy, VetOutcome, Violation, ViolationKind};
pub use session::{
    Decision, EnvSpec, IterationMetrics, IterationRecord, SessionError, TuningConfig,
    TuningReport, TuningSession,
};
pub use target::{LiveTarget, LiveWindow, Measurement, OfflineTarget, TuningTarget};
