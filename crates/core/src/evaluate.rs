//! Option Evaluator: extracting configuration changes from free-form
//! LLM responses.
//!
//! The paper (§3, §4.2): responses arrive as "text, a singular code
//! block, and an interleaving combination of both". The evaluator
//! extracts `key=value` assignments from fenced code blocks (```/~~~,
//! with or without a language tag), and "set X to Y"-style statements
//! from the surrounding prose.

/// Where an extracted change came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeOrigin {
    /// Inside a fenced code block.
    CodeBlock,
    /// Parsed out of prose.
    Prose,
}

/// One `name = value` assignment the model proposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposedChange {
    /// Option name as written by the model.
    pub name: String,
    /// Value literal as written.
    pub value: String,
    /// Extraction source.
    pub origin: ChangeOrigin,
}

/// The full extraction result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Evaluation {
    /// Assignments in response order, later duplicates removed.
    pub changes: Vec<ProposedChange>,
    /// Number of fenced code blocks found.
    pub code_blocks: usize,
    /// True when the response contained neither a code block nor any
    /// parseable assignment — the format checker then rejects it.
    pub unparseable: bool,
}

/// Extracts proposed changes from a model response.
pub fn evaluate_response(text: &str) -> Evaluation {
    let mut eval = Evaluation::default();
    let mut seen = std::collections::HashSet::new();

    let segments = split_fences(text);
    for seg in &segments {
        match seg {
            Segment::Code(body) => {
                eval.code_blocks += 1;
                for line in body.lines() {
                    if let Some((name, value)) = parse_assignment_line(line) {
                        push_unique(&mut eval.changes, &mut seen, name, value, ChangeOrigin::CodeBlock);
                    }
                }
            }
            Segment::Text(body) => {
                for (name, value) in parse_prose(body) {
                    push_unique(&mut eval.changes, &mut seen, name, value, ChangeOrigin::Prose);
                }
            }
        }
    }
    eval.unparseable = eval.code_blocks == 0 && eval.changes.is_empty();
    eval
}

fn push_unique(
    changes: &mut Vec<ProposedChange>,
    seen: &mut std::collections::HashSet<String>,
    name: String,
    value: String,
    origin: ChangeOrigin,
) {
    let key = name.to_ascii_lowercase();
    if seen.insert(key) {
        changes.push(ProposedChange { name, value, origin });
    }
}

enum Segment {
    Text(String),
    Code(String),
}

/// Splits on ``` and ~~~ fences. An optional language tag on the opening
/// fence line is discarded.
fn split_fences(text: &str) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut current = String::new();
    let mut in_code = false;
    let mut fence_token = "```";
    for line in text.lines() {
        let trimmed = line.trim_start();
        let is_fence = trimmed.starts_with("```") || trimmed.starts_with("~~~");
        if is_fence {
            let token = &trimmed[..3];
            if !in_code {
                segments.push(Segment::Text(std::mem::take(&mut current)));
                in_code = true;
                fence_token = if token == "```" { "```" } else { "~~~" };
            } else if trimmed.starts_with(fence_token) {
                segments.push(Segment::Code(std::mem::take(&mut current)));
                in_code = false;
            } else {
                current.push_str(line);
                current.push('\n');
            }
            continue;
        }
        current.push_str(line);
        current.push('\n');
    }
    if !current.is_empty() {
        segments.push(if in_code {
            Segment::Code(current)
        } else {
            Segment::Text(current)
        });
    }
    segments
}

fn is_option_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && s.contains('_') // RocksDB option names are snake_case
}

fn is_value_literal(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_' | '%'))
}

/// Parses one `key=value` line from a code block (tolerates bullets,
/// comments, quotes, and trailing commentary).
fn parse_assignment_line(line: &str) -> Option<(String, String)> {
    let t = line.trim().trim_start_matches(['-', '*', ' ']).trim();
    if t.is_empty() || t.starts_with('[') || t.starts_with('#') || t.starts_with(';') {
        return None;
    }
    let (k, v) = t.split_once('=')?;
    let name = k.trim().trim_matches('`').trim_matches('"').to_string();
    let mut value = v.trim().to_string();
    // Cut trailing commentary: "= 4  # for 4 cores" / "= 4 (because...)".
    for stop in ['#', ';', '('] {
        if let Some(pos) = value.find(stop) {
            value.truncate(pos);
        }
    }
    let value = value.trim().trim_matches('`').trim_matches('"').trim_end_matches(',').to_string();
    (is_option_name(&name) && is_value_literal(&value)).then_some((name, value))
}

/// Extracts "set X to Y", "change X to Y", "increase X to Y", and
/// inline "`X` = Y" statements from prose.
fn parse_prose(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let lower = text.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    for marker in [
        "set ", "setting ", "change ", "changing ", "increase ", "increasing ",
        "decrease ", "decreasing ", "raise ", "raising ", "lower ", "lowering ",
    ] {
        let mut from = 0;
        while let Some(pos) = lower[from..].find(marker) {
            let start = from + pos + marker.len();
            from = start;
            // Word boundary check: marker must start a word.
            let abs = from - marker.len();
            if abs > 0 && bytes[abs - 1].is_ascii_alphanumeric() {
                continue;
            }
            let tail = &text[start..];
            if let Some((name, value)) = parse_name_to_value(tail) {
                out.push((name, value));
            }
        }
    }
    // Inline "`name` = value" or "name = value" statements in prose.
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('-') || t.starts_with('*') {
            continue; // bullets are rationale, handled via markers
        }
        if let Some((name, value)) = parse_assignment_line(t) {
            // Only accept prose assignments when the line looks like a
            // standalone statement, not a sentence fragment.
            if t.split_whitespace().count() <= 4 {
                out.push((name, value));
            }
        }
    }
    out
}

/// Parses `<name> to <value>` / `<name> = <value>` after a verb marker.
fn parse_name_to_value(tail: &str) -> Option<(String, String)> {
    let tail = tail.trim_start();
    let name_end = tail.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '`'))?;
    let name = tail[..name_end].trim_matches('`').to_string();
    if !is_option_name(&name) {
        return None;
    }
    let rest = tail[name_end..].trim_start();
    let rest = rest
        .strip_prefix("to ")
        .or_else(|| rest.strip_prefix("= "))
        .or_else(|| rest.strip_prefix("=").map(str::trim_start))?;
    let value_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_' | '%')))
        .unwrap_or(rest.len());
    let value = rest[..value_end].trim_end_matches('.').to_string();
    is_value_literal(&value).then_some((name, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fenced_block() {
        let text = "Here you go:\n```ini\n[DBOptions]\n  max_background_jobs=4\n  bytes_per_sync=1MB\n```\nGood luck!";
        let e = evaluate_response(text);
        assert_eq!(e.code_blocks, 1);
        assert_eq!(e.changes.len(), 2);
        assert_eq!(e.changes[0].name, "max_background_jobs");
        assert_eq!(e.changes[1].value, "1MB");
        assert!(!e.unparseable);
    }

    #[test]
    fn bare_and_tilde_fences() {
        let text = "```\nwrite_buffer_size=32MB\n```\nand\n~~~\nblock_size=16KB\n~~~";
        let e = evaluate_response(text);
        assert_eq!(e.code_blocks, 2);
        assert_eq!(e.changes.len(), 2);
    }

    #[test]
    fn interleaved_text_and_blocks() {
        let text = "For DB options:\n```ini\nmax_background_jobs=4\n```\nFor the column family:\n```ini\nwrite_buffer_size=64MB\n```\nAdditionally, set max_subcompactions to 2 — it helps.";
        let e = evaluate_response(text);
        assert_eq!(e.changes.len(), 3);
        let prose = e.changes.iter().find(|c| c.name == "max_subcompactions").unwrap();
        assert_eq!(prose.origin, ChangeOrigin::Prose);
        assert_eq!(prose.value, "2");
    }

    #[test]
    fn prose_variants() {
        for (text, name, value) in [
            ("You should set `block_cache_size` to 1024MB for this box.", "block_cache_size", "1024MB"),
            ("I would increase max_write_buffer_number to 4.", "max_write_buffer_number", "4"),
            ("Consider lowering level0_slowdown_writes_trigger to 12,", "level0_slowdown_writes_trigger", "12"),
        ] {
            let e = evaluate_response(text);
            assert_eq!(e.changes.len(), 1, "{text}");
            assert_eq!(e.changes[0].name, name);
            assert_eq!(e.changes[0].value, value);
        }
    }

    #[test]
    fn duplicates_keep_first_occurrence() {
        let text = "```\nwrite_buffer_size=32MB\nwrite_buffer_size=64MB\n```";
        let e = evaluate_response(text);
        assert_eq!(e.changes.len(), 1);
        assert_eq!(e.changes[0].value, "32MB");
    }

    #[test]
    fn comments_and_sections_skipped() {
        let text = "```ini\n# tuned by llm\n[DBOptions]\n; note\n  max_background_jobs=4 # parallelism\n```";
        let e = evaluate_response(text);
        assert_eq!(e.changes.len(), 1);
        assert_eq!(e.changes[0].value, "4");
    }

    #[test]
    fn pure_prose_without_changes_is_unparseable() {
        let e = evaluate_response("I think your configuration looks fine as is. Nice database!");
        assert!(e.unparseable);
        assert!(e.changes.is_empty());
    }

    #[test]
    fn empty_code_block_is_not_unparseable() {
        let e = evaluate_response("```\n\n```");
        assert!(!e.unparseable, "a block was found, just empty");
        assert!(e.changes.is_empty());
    }

    #[test]
    fn narrative_sentences_do_not_produce_garbage() {
        let text = "The write path is the bottleneck = a classic problem. We mostly care about p99.";
        let e = evaluate_response(text);
        assert!(e.changes.is_empty(), "{:?}", e.changes);
    }

    #[test]
    fn expert_model_output_parses_fully() {
        use llm_client::{ChatRequest, ExpertModel, LanguageModel, QuirkConfig};
        for iteration in 1..=8u64 {
            let mut model = ExpertModel::new(3, QuirkConfig::default());
            let prompt = format!(
                "CPU: 2 logical cores\nMemory: 4.00 GiB total\nStorage: SATA HDD\n\
                 Workload: write-intensive fillrandom\nThis is iteration {iteration}.\n\
                 Change at most 10 options."
            );
            let reply = model.complete(&ChatRequest::single_turn("g", &prompt)).unwrap();
            let e = evaluate_response(&reply.content);
            assert!(!e.unparseable, "iteration {iteration}: {}", reply.content);
            assert!(!e.changes.is_empty(), "iteration {iteration}");
        }
    }
}
