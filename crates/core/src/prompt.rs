//! Prompt generation: assembling the tuning prompt from system,
//! workload, configuration, and feedback information.
//!
//! The paper's challenges §3 ask: *how much information is enough, what
//! information first, and how to formulate the prompt?* The builder
//! answers operationally: sections carry priorities, the prompt has a
//! character budget, and lower-priority sections are truncated or
//! dropped first.

use hw_sim::{DeviceProbe, HardwareEnv, SystemSnapshot};

use crate::bench_text::ParsedBench;

/// One titled section of the prompt.
#[derive(Debug, Clone)]
pub struct PromptSection {
    /// Markdown-ish heading.
    pub title: String,
    /// Body text.
    pub content: String,
    /// Higher survives budget pressure longer.
    pub priority: u8,
}

/// Assembles sections into a budgeted prompt.
#[derive(Debug)]
pub struct PromptBuilder {
    sections: Vec<PromptSection>,
    budget_chars: usize,
}

impl PromptBuilder {
    /// Creates a builder with a character budget (a proxy for the
    /// context-window limit of the target LLM).
    pub fn new(budget_chars: usize) -> Self {
        PromptBuilder {
            sections: Vec::new(),
            budget_chars: budget_chars.max(500),
        }
    }

    /// Adds a section.
    pub fn section(
        &mut self,
        title: impl Into<String>,
        content: impl Into<String>,
        priority: u8,
    ) -> &mut Self {
        self.sections.push(PromptSection {
            title: title.into(),
            content: content.into(),
            priority,
        });
        self
    }

    /// Renders the prompt: sections appear in *insertion order*, but when
    /// the budget is exceeded the lowest-priority sections are truncated
    /// (then dropped) first.
    pub fn render(&self) -> String {
        let mut keep: Vec<(usize, String)> = self
            .sections
            .iter()
            .enumerate()
            .map(|(i, s)| (i, format!("## {}\n{}\n", s.title, s.content)))
            .collect();
        let total = |parts: &[(usize, String)]| parts.iter().map(|(_, t)| t.len()).sum::<usize>();

        // Trim lowest-priority sections until the budget fits.
        let mut order: Vec<usize> = (0..self.sections.len()).collect();
        order.sort_by_key(|i| self.sections[*i].priority);
        for &victim in &order {
            if total(&keep) <= self.budget_chars {
                break;
            }
            let over = total(&keep) - self.budget_chars;
            let entry = keep.iter_mut().find(|(i, _)| *i == victim).expect("present");
            if entry.1.len() <= over + 40 {
                entry.1.clear(); // drop entirely
            } else {
                let keep_len = entry.1.len() - over - 20;
                let mut cut = keep_len;
                while cut > 0 && !entry.1.is_char_boundary(cut) {
                    cut -= 1;
                }
                entry.1.truncate(cut);
                entry.1.push_str("\n[...truncated...]\n");
            }
        }
        keep.into_iter().map(|(_, t)| t).filter(|t| !t.is_empty()).collect()
    }
}

/// Everything the prompt generator interlaces (paper Fig. 2, "automatic
/// prompt generation ... from collated data").
#[derive(Debug)]
pub struct PromptContext<'a> {
    /// The environment the last benchmark ran on (monitors are read from
    /// here — the psutil/fio role).
    pub env: &'a HardwareEnv,
    /// Natural-language workload description from the user/spec.
    pub workload: &'a str,
    /// Current configuration as ini text.
    pub options_ini: &'a str,
    /// 1-based tuning iteration about to run.
    pub iteration: usize,
    /// Parsed result of the previous benchmark, if any.
    pub last_result: Option<&'a ParsedBench>,
    /// Raw engine statistics dump (`Db::stats_text()`) from the previous
    /// run, when the session opted into `include_stats_dump`. `None`
    /// keeps the prompt byte-identical with pre-observability sessions.
    pub stats_dump: Option<&'a str>,
    /// Best throughput seen so far (ops/sec).
    pub best_throughput: Option<f64>,
    /// The previous proposal regressed and was reverted.
    pub deteriorated: bool,
    /// Safeguard complaints about the previous response, fed back so the
    /// model can correct itself.
    pub violation_feedback: &'a [String],
    /// Cap on option changes per iteration.
    pub max_changes: usize,
}

/// Builds the full tuning prompt for one iteration.
pub fn build_tuning_prompt(ctx: &PromptContext<'_>, budget_chars: usize) -> String {
    let mut b = PromptBuilder::new(budget_chars);
    b.section(
        "Role",
        "You are an expert database administrator specializing in tuning RocksDB-style \
         LSM-tree key-value stores. You tune by editing the OPTIONS (ini) file.",
        10,
    );
    b.section(
        "Task",
        format!(
            "This is tuning iteration {}. Propose improved configuration values for the \
             workload and hardware below. Change at most {} options. Respond with a short \
             explanation and the changed options in an ini code block using the sections \
             [DBOptions], [CFOptions \"default\"], and [TableOptions/BlockBasedTable \"default\"]. \
             Do not disable journaling, logging, or crash-safety features.",
            ctx.iteration, ctx.max_changes
        ),
        9,
    );
    b.section("Expected workload", ctx.workload.to_string(), 8);

    let snapshot = SystemSnapshot::capture(ctx.env);
    b.section("System information (live)", snapshot.to_prompt_text(), 7);
    let probe = DeviceProbe::run(ctx.env);
    b.section("Storage device probe", probe.to_prompt_text(), 4);

    if let Some(last) = ctx.last_result {
        let mut text = last.to_prompt_text();
        if let Some(best) = ctx.best_throughput {
            text.push_str(&format!("\nBest throughput so far: {best:.0} ops/sec"));
        }
        b.section("Previous benchmark result", text, 6);
    }
    if let Some(dump) = ctx.stats_dump {
        // Low priority: the parsed datapoints above carry the headline
        // numbers, so the raw dump is the first thing budget pressure
        // truncates.
        b.section("Engine statistics (previous run)", dump.to_string(), 3);
    }
    if ctx.deteriorated {
        b.section(
            "Feedback",
            "The previous configuration change DETERIORATED performance and was reverted. \
             The configuration below is the restored known-good one; try a different approach.",
            6,
        );
    }
    if !ctx.violation_feedback.is_empty() {
        b.section(
            "Rejected suggestions",
            format!(
                "These earlier suggestions were rejected by safeguards; do not repeat them:\n{}",
                ctx.violation_feedback.join("\n")
            ),
            6,
        );
    }
    b.section("Current configuration (ini)", ctx.options_ini.to_string(), 5);
    b.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_sim::DeviceModel;

    fn env() -> HardwareEnv {
        HardwareEnv::builder()
            .cores(2)
            .memory_gib(4)
            .device(DeviceModel::sata_hdd())
            .build_sim()
    }

    fn ctx_prompt(budget: usize) -> String {
        let env = env();
        let ini = lsm_kvs::options::ini::to_ini(&lsm_kvs::options::Options::default());
        let ctx = PromptContext {
            env: &env,
            workload: "write-intensive: insert 50M key-value pairs in random order",
            options_ini: &ini,
            iteration: 3,
            last_result: None,
            stats_dump: None,
            best_throughput: Some(61000.0),
            deteriorated: true,
            violation_feedback: &["disable_wal=true (protected option)".to_string()],
            max_changes: 10,
        };
        build_tuning_prompt(&ctx, budget)
    }

    #[test]
    fn prompt_contains_every_section_kind() {
        let p = ctx_prompt(50_000);
        for needle in [
            "expert database administrator",
            "iteration 3",
            "at most 10 options",
            "write-intensive",
            "logical cores",
            "fio probe",
            "DETERIORATED",
            "do not repeat them",
            "[DBOptions]",
            "write_buffer_size=",
        ] {
            assert!(p.contains(needle), "missing {needle:?}");
        }
    }

    #[test]
    fn stats_dump_section_is_gated() {
        let env = env();
        let ini = lsm_kvs::options::ini::to_ini(&lsm_kvs::options::Options::default());
        let dump = "** DB Stats **\nUptime(secs): 1.0 total";
        let mut ctx = PromptContext {
            env: &env,
            workload: "w",
            options_ini: &ini,
            iteration: 1,
            last_result: None,
            stats_dump: None,
            best_throughput: None,
            deteriorated: false,
            violation_feedback: &[],
            max_changes: 10,
        };
        let without = build_tuning_prompt(&ctx, 50_000);
        assert!(!without.contains("Engine statistics"));
        ctx.stats_dump = Some(dump);
        let with = build_tuning_prompt(&ctx, 50_000);
        assert!(with.contains("Engine statistics (previous run)"));
        assert!(with.contains("** DB Stats **"));
    }

    #[test]
    fn budget_truncates_low_priority_first() {
        let full = ctx_prompt(50_000);
        let tight = ctx_prompt(2_000);
        assert!(tight.len() < full.len());
        assert!(tight.len() <= 2_600, "roughly respects the budget: {}", tight.len());
        // The role/task survive; the big options dump gets cut.
        assert!(tight.contains("expert database administrator"));
        assert!(tight.contains("iteration 3"));
    }

    #[test]
    fn sections_render_in_insertion_order() {
        let mut b = PromptBuilder::new(10_000);
        b.section("First", "aaa", 1);
        b.section("Second", "bbb", 9);
        let out = b.render();
        assert!(out.find("First").unwrap() < out.find("Second").unwrap());
    }

    #[test]
    fn truncation_marks_the_cut() {
        let mut b = PromptBuilder::new(600);
        b.section("Keep", "short and important", 9);
        b.section("Big", "x".repeat(2_000), 1);
        let out = b.render();
        assert!(out.contains("short and important"));
        assert!(out.contains("[...truncated...]") || !out.contains("Big"));
    }

    #[test]
    fn expert_model_understands_generated_prompt() {
        use llm_client::{ChatRequest, ExpertModel, LanguageModel};
        let prompt = ctx_prompt(20_000);
        let mut model = ExpertModel::well_behaved(1);
        let reply = model.complete(&ChatRequest::single_turn("gpt-4", &prompt)).unwrap();
        // The expert saw a 2-core / 4 GiB / HDD write-heavy system.
        assert!(reply.content.contains("2 CPU cores"), "{}", reply.content);
        assert!(reply.content.contains("write-intensive"));
        assert!(reply.content.contains("```"));
    }
}
