//! The tuning session: ELMo-Tune's feedback loop.
//!
//! Orchestrates prompt generation -> LLM -> option evaluation ->
//! safeguards -> benchmark (with early-stop monitor) -> active flagging,
//! for a configured number of iterations, and records everything needed
//! to reproduce the paper's tables and figures.

use std::fmt;

use db_bench::BenchmarkSpec;
use hw_sim::{DeviceModel, HardwareEnv};
use llm_client::{ChatRequest, LanguageModel, LlmError};
use lsm_kvs::options::{ini, Options};

use crate::bench_text::ParsedBench;
use crate::flagger::{ActiveFlagger, Objective, Verdict};
use crate::prompt::{build_tuning_prompt, PromptContext};
use crate::safeguard::{vet, SafeguardPolicy, Violation};
use crate::target::{OfflineTarget, TuningTarget};

/// Errors from a tuning session.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// The storage engine failed.
    Engine(lsm_kvs::Error),
    /// The language model failed.
    Llm(LlmError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Engine(e) => write!(f, "engine error: {e}"),
            SessionError::Llm(e) => write!(f, "llm error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<lsm_kvs::Error> for SessionError {
    fn from(e: lsm_kvs::Error) -> Self {
        SessionError::Engine(e)
    }
}

impl From<LlmError> for SessionError {
    fn from(e: LlmError) -> Self {
        SessionError::Llm(e)
    }
}

/// The hardware a session runs on (a fresh [`HardwareEnv`] is built per
/// benchmark run so device/CPU queue state never leaks across runs).
#[derive(Debug, Clone)]
pub struct EnvSpec {
    /// CPU cores.
    pub cores: usize,
    /// RAM in GiB.
    pub mem_gib: u64,
    /// Storage device model.
    pub device: DeviceModel,
}

impl EnvSpec {
    /// The paper's default evaluation box: 4 cores, 4 GiB, NVMe.
    pub fn paper_default() -> Self {
        EnvSpec {
            cores: 4,
            mem_gib: 4,
            device: DeviceModel::nvme_ssd(),
        }
    }

    /// Builds a fresh simulated environment.
    pub fn build(&self) -> HardwareEnv {
        HardwareEnv::builder()
            .cores(self.cores)
            .memory_gib(self.mem_gib)
            .device(self.device.clone())
            .build_sim()
    }

    /// One-line description ("2 cores / 4 GiB / SATA HDD").
    pub fn describe(&self) -> String {
        format!("{} cores / {} GiB / {}", self.cores, self.mem_gib, self.device.class)
    }
}

/// Session-level knobs.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// Tuning iterations after the baseline (paper: 7).
    pub iterations: usize,
    /// Cap on option changes per iteration (paper observation: >10 is
    /// marginal).
    pub max_changes_per_iteration: usize,
    /// What to optimize.
    pub objective: Objective,
    /// Prompt character budget.
    pub prompt_budget_chars: usize,
    /// Enable the in-run early-stop monitor.
    pub early_stop: bool,
    /// Stop when this many consecutive iterations fail to improve
    /// (`None` = always run all iterations, like the paper's figures).
    pub stop_on_stagnation: Option<usize>,
    /// Embed the engine's `--stats_dump` output (`Db::stats_text()`) in
    /// each iteration prompt. Off by default so existing sessions (and
    /// the `repro` goldens) keep byte-identical prompts.
    pub include_stats_dump: bool,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            iterations: 7,
            max_changes_per_iteration: 10,
            objective: Objective::Throughput,
            prompt_budget_chars: 16_000,
            early_stop: true,
            stop_on_stagnation: None,
            include_stats_dump: false,
        }
    }
}

/// What the flagger decided about one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Configuration kept (improved on the best so far).
    Kept,
    /// Configuration reverted (regressed).
    Reverted,
    /// The benchmark monitor aborted the run; configuration reverted.
    AbortedEarly,
    /// The response had no parseable configuration (format check failed).
    RejectedFormat,
    /// All proposed changes were rejected or no-ops; nothing to measure.
    NoChanges,
}

/// The headline metrics of one measured run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationMetrics {
    /// Throughput in ops/sec.
    pub ops_per_sec: f64,
    /// Mean microseconds per op.
    pub micros_per_op: f64,
    /// p99 write latency (us), when the workload writes.
    pub p99_write_us: Option<f64>,
    /// p99 read latency (us), when the workload reads.
    pub p99_read_us: Option<f64>,
    /// The run was aborted early.
    pub aborted: bool,
}

impl From<&ParsedBench> for IterationMetrics {
    fn from(p: &ParsedBench) -> Self {
        IterationMetrics {
            ops_per_sec: p.ops_per_sec,
            micros_per_op: p.micros_per_op,
            p99_write_us: p.p99_write_us,
            p99_read_us: p.p99_read_us,
            aborted: p.aborted,
        }
    }
}

/// Everything recorded about one tuning iteration.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 1-based iteration index.
    pub index: usize,
    /// The full prompt sent to the model.
    pub prompt: String,
    /// The model's full response.
    pub response: String,
    /// Changes the safeguards accepted, as `(name, from, to)`.
    pub applied: Vec<(String, String, String)>,
    /// Safeguard rejections/adjustments.
    pub violations: Vec<Violation>,
    /// Measured metrics for this iteration's configuration (for
    /// `NoChanges`/`RejectedFormat`, the best-so-far metrics).
    pub metrics: IterationMetrics,
    /// The flagger's decision.
    pub decision: Decision,
    /// The configuration in force *after* this iteration.
    pub options_after: Options,
}

/// The result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Workload short name (FR/RR/RRWR/Mixgraph).
    pub workload: String,
    /// Hardware description.
    pub environment: String,
    /// Baseline (iteration 0, default configuration) metrics.
    pub baseline: IterationMetrics,
    /// Per-iteration records.
    pub records: Vec<IterationRecord>,
    /// The best configuration found.
    pub final_options: Options,
    /// Iteration index (0 = baseline) that produced the best result.
    pub best_iteration: usize,
    /// Best metrics observed.
    pub best: IterationMetrics,
}

impl TuningReport {
    /// Tuned-over-default throughput factor.
    pub fn throughput_improvement(&self) -> f64 {
        if self.baseline.ops_per_sec <= 0.0 {
            return 1.0;
        }
        self.best.ops_per_sec / self.baseline.ops_per_sec
    }

    /// Default-over-tuned p99 factor (write side), >1 means improvement.
    pub fn p99_write_improvement(&self) -> Option<f64> {
        match (self.baseline.p99_write_us, self.best.p99_write_us) {
            (Some(b), Some(t)) if t > 0.0 => Some(b / t),
            _ => None,
        }
    }

    /// Default-over-tuned p99 factor (read side).
    pub fn p99_read_improvement(&self) -> Option<f64> {
        match (self.baseline.p99_read_us, self.best.p99_read_us) {
            (Some(b), Some(t)) if t > 0.0 => Some(b / t),
            _ => None,
        }
    }

    /// The Table-5-style matrix: for every option ever changed, its value
    /// per iteration (None = unchanged that iteration).
    pub fn option_change_matrix(&self) -> Vec<(String, Vec<Option<String>>)> {
        let mut names: Vec<String> = Vec::new();
        for r in &self.records {
            for (name, _, _) in &r.applied {
                if !names.contains(name) {
                    names.push(name.clone());
                }
            }
        }
        names
            .into_iter()
            .map(|name| {
                let row = self
                    .records
                    .iter()
                    .map(|r| {
                        r.applied
                            .iter()
                            .find(|(n, _, _)| *n == name)
                            .map(|(_, _, to)| to.clone())
                    })
                    .collect();
                (name, row)
            })
            .collect()
    }

    /// Renders the option-change matrix as a table (paper Table 5).
    pub fn table5_text(&self) -> String {
        let matrix = self.option_change_matrix();
        let iters = self.records.len();
        let mut out = String::new();
        out.push_str(&format!("{:<40} | default", "Parameter"));
        for i in 1..=iters {
            out.push_str(&format!(" | iter {i}"));
        }
        out.push('\n');
        let defaults = Options::default();
        for (name, row) in &matrix {
            let default = defaults.get_by_name(name).unwrap_or_default();
            out.push_str(&format!("{name:<40} | {default}"));
            for cell in row {
                out.push_str(&format!(" | {}", cell.clone().unwrap_or_default()));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a per-iteration summary (the data behind Figures 3/4).
    pub fn iteration_series_text(&self) -> String {
        let mut out = format!(
            "iter 0 (default): {:.0} ops/sec p99w={:?} p99r={:?}\n",
            self.baseline.ops_per_sec, self.baseline.p99_write_us, self.baseline.p99_read_us
        );
        for r in &self.records {
            out.push_str(&format!(
                "iter {}: {:.0} ops/sec p99w={:?} p99r={:?} [{:?}] ({} changes, {} violations)\n",
                r.index,
                r.metrics.ops_per_sec,
                r.metrics.p99_write_us,
                r.metrics.p99_read_us,
                r.decision,
                r.applied.len(),
                r.violations.len(),
            ));
        }
        out
    }
}

/// A configured tuning session.
///
/// See the crate docs for an end-to-end example.
pub struct TuningSession<'m> {
    env_spec: EnvSpec,
    spec: BenchmarkSpec,
    model: &'m mut dyn LanguageModel,
    config: TuningConfig,
    policy: SafeguardPolicy,
}

impl fmt::Debug for TuningSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuningSession")
            .field("env", &self.env_spec)
            .field("workload", &self.spec.workload.name())
            .finish_non_exhaustive()
    }
}

impl<'m> TuningSession<'m> {
    /// Creates a session with default config and a memory-budgeted
    /// safeguard policy.
    pub fn new(env_spec: EnvSpec, spec: BenchmarkSpec, model: &'m mut dyn LanguageModel) -> Self {
        let policy = SafeguardPolicy::with_memory_budget((env_spec.mem_gib) << 30);
        TuningSession {
            env_spec,
            spec,
            model,
            config: TuningConfig::default(),
            policy,
        }
    }

    /// Overrides the tuning configuration.
    pub fn with_config(mut self, config: TuningConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the safeguard policy.
    pub fn with_policy(mut self, policy: SafeguardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs the feedback loop starting from `start` options.
    ///
    /// Measures through an [`OfflineTarget`] — the paper's
    /// reopen-per-candidate cycle, byte-identical to the pre-refactor
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] on engine or LLM failure.
    pub fn run(self, start: Options) -> Result<TuningReport, SessionError> {
        let target = OfflineTarget::new(self.env_spec.clone(), self.spec.clone());
        self.run_with_target(target, start)
    }

    /// Runs the feedback loop against an arbitrary [`TuningTarget`] —
    /// e.g. a [`crate::target::LiveTarget`] pointed at a running
    /// `kv_server`, which applies each vetted diff over the wire via the
    /// SetOptions RPC instead of reopening a database.
    ///
    /// The session's [`EnvSpec`]/[`BenchmarkSpec`] are not consulted;
    /// the target supplies environment and workload descriptions.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] on engine, transport, or LLM failure.
    pub fn run_with_target(
        self,
        mut target: impl TuningTarget,
        start: Options,
    ) -> Result<TuningReport, SessionError> {
        let TuningSession {
            env_spec: _,
            spec: _,
            model,
            config,
            policy,
        } = self;
        let flagger = ActiveFlagger {
            objective: config.objective,
            min_improvement: 0.005,
        };

        // Iteration 0: baseline with the starting configuration.
        let baseline_measured = target.measure(&start, None, config.include_stats_dump)?;
        let (baseline_parsed, mut last_env, mut last_dump) = (
            baseline_measured.parsed,
            baseline_measured.env,
            baseline_measured.stats_dump,
        );
        let baseline = IterationMetrics::from(&baseline_parsed);
        let mut best_options = start.clone();
        let mut best_parsed = baseline_parsed.clone();
        let mut best_iteration = 0usize;

        let mut records: Vec<IterationRecord> = Vec::new();
        let mut last_parsed = baseline_parsed;
        let mut deteriorated = false;
        let mut violation_feedback: Vec<String> = Vec::new();
        let mut stagnant = 0usize;

        for index in 1..=config.iterations {
            let options_ini = ini::to_ini(&best_options);
            let workload_text = target.workload_text();
            let prompt = build_tuning_prompt(
                &PromptContext {
                    env: &last_env,
                    workload: &workload_text,
                    options_ini: &options_ini,
                    iteration: index,
                    last_result: Some(&last_parsed),
                    stats_dump: last_dump.as_deref(),
                    best_throughput: Some(best_parsed.ops_per_sec),
                    deteriorated,
                    violation_feedback: &violation_feedback,
                    max_changes: config.max_changes_per_iteration,
                },
                config.prompt_budget_chars,
            );
            let response = model.complete(&ChatRequest::single_turn("gpt-4", &prompt))?;
            let evaluation = crate::evaluate::evaluate_response(&response.content);

            if evaluation.unparseable {
                violation_feedback =
                    vec!["(previous response contained no parseable configuration)".to_string()];
                records.push(IterationRecord {
                    index,
                    prompt,
                    response: response.content,
                    applied: Vec::new(),
                    violations: Vec::new(),
                    metrics: IterationMetrics::from(&best_parsed),
                    decision: Decision::RejectedFormat,
                    options_after: best_options.clone(),
                });
                continue;
            }

            let outcome = vet(&best_options, &evaluation.changes, &policy);
            violation_feedback = outcome
                .violations
                .iter()
                .map(|v| v.to_feedback_line())
                .collect();

            if outcome.applied.is_empty() {
                records.push(IterationRecord {
                    index,
                    prompt,
                    response: response.content,
                    applied: Vec::new(),
                    violations: outcome.violations,
                    metrics: IterationMetrics::from(&best_parsed),
                    decision: Decision::NoChanges,
                    options_after: best_options.clone(),
                });
                deteriorated = false;
                continue;
            }

            let reference = config.early_stop.then_some(best_parsed.ops_per_sec);
            let measured =
                target.measure(&outcome.options, reference, config.include_stats_dump)?;
            let candidate_parsed = measured.parsed;
            last_env = measured.env;
            last_dump = measured.stats_dump;
            let verdict = flagger.judge(&best_parsed, &candidate_parsed);
            let decision = if candidate_parsed.aborted {
                Decision::AbortedEarly
            } else if verdict == Verdict::Keep {
                Decision::Kept
            } else {
                Decision::Reverted
            };
            let applied: Vec<(String, String, String)> = outcome
                .applied
                .iter()
                .map(|a| (a.name.clone(), a.from.clone(), a.to.clone()))
                .collect();

            match decision {
                Decision::Kept => {
                    best_options = outcome.options;
                    best_parsed = candidate_parsed.clone();
                    best_iteration = index;
                    deteriorated = false;
                    stagnant = 0;
                }
                _ => {
                    // Rejected: live targets must roll the candidate's
                    // changes back (offline targets reopen anyway).
                    target.revert_to(&best_options)?;
                    deteriorated = true;
                    stagnant += 1;
                }
            }

            records.push(IterationRecord {
                index,
                prompt,
                response: response.content,
                applied,
                violations: outcome.violations,
                metrics: IterationMetrics::from(&candidate_parsed),
                decision,
                options_after: best_options.clone(),
            });
            last_parsed = candidate_parsed;

            if let Some(patience) = config.stop_on_stagnation {
                if stagnant >= patience {
                    break;
                }
            }
        }

        Ok(TuningReport {
            workload: target.workload_short(),
            environment: target.environment_text(),
            baseline,
            best: IterationMetrics::from(&best_parsed),
            records,
            final_options: best_options,
            best_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_client::{ExpertModel, QuirkConfig, ScriptedModel};

    fn small_fr_spec() -> BenchmarkSpec {
        let mut s = BenchmarkSpec::fillrandom(1.0);
        s.num_ops = 30_000;
        s.key_space = 30_000;
        s.report_interval_ms = 100;
        s
    }

    fn hdd_env() -> EnvSpec {
        EnvSpec {
            cores: 2,
            mem_gib: 4,
            device: DeviceModel::sata_hdd(),
        }
    }

    #[test]
    fn session_runs_and_improves_fillrandom_on_hdd() {
        let mut model = ExpertModel::new(7, QuirkConfig::default());
        let config = TuningConfig {
            iterations: 4,
            ..TuningConfig::default()
        };
        let report = TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
            .with_config(config)
            .run(Options::default())
            .unwrap();
        assert_eq!(report.records.len(), 4);
        assert!(report.baseline.ops_per_sec > 0.0);
        assert!(
            report.throughput_improvement() >= 1.0,
            "tuned should not be worse: {}",
            report.throughput_improvement()
        );
        // The flagger keeps only improvements, so the final options must
        // have been measured at least as good as baseline.
        assert!(report.best.ops_per_sec >= report.baseline.ops_per_sec);
    }

    #[test]
    fn safeguards_block_wal_disable_but_session_continues() {
        let mut model = ExpertModel::new(7, QuirkConfig::default());
        let config = TuningConfig {
            iterations: 2,
            ..TuningConfig::default()
        };
        let report = TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
            .with_config(config)
            .run(Options::default())
            .unwrap();
        // Iteration 2 of the quirky expert suggests disable_wal=true.
        let iter2 = &report.records[1];
        assert!(
            iter2
                .violations
                .iter()
                .any(|v| v.name == "disable_wal"),
            "{:?}",
            iter2.violations
        );
        assert!(!report.final_options.disable_wal);
    }

    #[test]
    fn unparseable_response_is_rejected_by_format_check() {
        let mut model = ScriptedModel::new(vec![
            "Your setup looks great, nothing to change!".to_string(),
            "```ini\nmax_background_jobs=4\n```".to_string(),
        ]);
        let config = TuningConfig {
            iterations: 2,
            ..TuningConfig::default()
        };
        let report = TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
            .with_config(config)
            .run(Options::default())
            .unwrap();
        assert_eq!(report.records[0].decision, Decision::RejectedFormat);
        assert_ne!(report.records[1].decision, Decision::RejectedFormat);
    }

    #[test]
    fn regressions_are_reverted() {
        // A scripted model that proposes something harmful: a tiny write
        // buffer with compaction disabled... then nothing.
        let mut model = ScriptedModel::new(vec![
            "```ini\nwrite_buffer_size=64KB\nlevel0_slowdown_writes_trigger=2\nlevel0_stop_writes_trigger=3\n```".to_string(),
        ]);
        let config = TuningConfig {
            iterations: 1,
            ..TuningConfig::default()
        };
        let report = TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
            .with_config(config)
            .run(Options::default())
            .unwrap();
        let r = &report.records[0];
        assert!(
            matches!(r.decision, Decision::Reverted | Decision::AbortedEarly),
            "harmful config must not be kept: {:?}",
            r.decision
        );
        assert_eq!(
            report.final_options.write_buffer_size,
            Options::default().write_buffer_size,
            "reverted to default"
        );
    }

    #[test]
    fn stats_dump_reaches_prompt_only_when_enabled() {
        let run = |include: bool| {
            let mut model = ExpertModel::well_behaved(2);
            let config = TuningConfig {
                iterations: 2,
                include_stats_dump: include,
                ..TuningConfig::default()
            };
            TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
                .with_config(config)
                .run(Options::default())
                .unwrap()
        };
        let without = run(false);
        assert!(
            without.records.iter().all(|r| !r.prompt.contains("Engine statistics")),
            "dump must stay out of prompts by default"
        );
        let with = run(true);
        let first = &with.records[0].prompt;
        assert!(first.contains("Engine statistics (previous run)"), "{first}");
        assert!(first.contains("Compaction Stats [default]"), "{first}");
    }

    #[test]
    fn option_change_matrix_covers_applied_changes() {
        let mut model = ExpertModel::well_behaved(3);
        let config = TuningConfig {
            iterations: 3,
            ..TuningConfig::default()
        };
        let report = TuningSession::new(hdd_env(), small_fr_spec(), &mut model)
            .with_config(config)
            .run(Options::default())
            .unwrap();
        let matrix = report.option_change_matrix();
        assert!(!matrix.is_empty());
        let text = report.table5_text();
        assert!(text.contains("Parameter"));
        for (name, _) in &matrix {
            assert!(text.contains(name));
        }
        let series = report.iteration_series_text();
        assert!(series.contains("iter 0 (default)"));
    }
}
