//! Where the tuning loop points its benchmarks: the [`TuningTarget`]
//! abstraction.
//!
//! The paper's loop measures each candidate configuration by *reopening*
//! a database from a preloaded image and replaying a benchmark
//! ([`OfflineTarget`] — the original in-process cycle, byte-identical to
//! the pre-refactor session). [`LiveTarget`] points the same loop at a
//! **running** `kv_server` instead: candidate diffs are applied over the
//! wire with the SetOptions RPC (no reopen), and "throughput" is the
//! server's own ticker deltas across a wall-clock observation window
//! fetched via the Stats RPC. The keep/revert decision machinery above
//! the trait is unchanged in both modes.

use std::sync::Arc;
use std::time::Duration;

use db_bench::{run_benchmark, BenchmarkSpec, MonitorControl, MonitorSample};
use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::vfs::MemVfs;
use lsm_kvs::{Db, Ticker};
use lsm_server::{OptionAck, RemoteDb};

use crate::bench_text::{parse_db_bench_output, ParsedBench};
use crate::flagger::EarlyStopMonitor;
use crate::session::{EnvSpec, SessionError};

/// One measured run of a candidate configuration.
#[derive(Debug)]
pub struct Measurement {
    /// Headline metrics in the shape the flagger judges.
    pub parsed: ParsedBench,
    /// The hardware environment to describe in the next prompt.
    pub env: HardwareEnv,
    /// Engine stats dump for the next prompt, when requested.
    pub stats_dump: Option<String>,
}

/// A thing the tuning loop can apply configurations to and benchmark.
///
/// `measure` is called once per iteration (and once for the baseline,
/// with the starting configuration and `reference = None`). The target
/// owns both halves of the cycle: making `opts` the configuration in
/// force, and producing a [`ParsedBench`] the flagger can judge.
///
/// When the flagger rejects a candidate the session calls [`revert_to`]
/// with the best-so-far configuration. Targets that reopen per run
/// ([`OfflineTarget`]) need no action — the next `measure` starts from
/// scratch — which is why the default is a no-op. Targets that mutate
/// shared live state ([`LiveTarget`]) must roll the change back.
///
/// [`revert_to`]: TuningTarget::revert_to
pub trait TuningTarget {
    /// One-line hardware description for reports ("4 cores / 4 GiB / ...").
    fn environment_text(&self) -> String;

    /// Workload short name for reports (FR/RR/RRWR/Mixgraph/live).
    fn workload_short(&self) -> String;

    /// Workload description for prompts.
    fn workload_text(&self) -> String;

    /// Makes `opts` the configuration in force and measures it.
    ///
    /// `reference` is the best-so-far throughput when the session wants
    /// an early-stop watchdog; `want_stats_dump` asks for an engine
    /// stats dump to embed in the next prompt.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] on engine, transport, or benchmark
    /// failure.
    fn measure(
        &mut self,
        opts: &Options,
        reference: Option<f64>,
        want_stats_dump: bool,
    ) -> Result<Measurement, SessionError>;

    /// Restores `best` after a rejected candidate. Default: no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] if the rollback itself fails.
    fn revert_to(&mut self, best: &Options) -> Result<(), SessionError> {
        let _ = best;
        Ok(())
    }
}

impl<T: TuningTarget + ?Sized> TuningTarget for &mut T {
    fn environment_text(&self) -> String {
        (**self).environment_text()
    }
    fn workload_short(&self) -> String {
        (**self).workload_short()
    }
    fn workload_text(&self) -> String {
        (**self).workload_text()
    }
    fn measure(
        &mut self,
        opts: &Options,
        reference: Option<f64>,
        want_stats_dump: bool,
    ) -> Result<Measurement, SessionError> {
        (**self).measure(opts, reference, want_stats_dump)
    }
    fn revert_to(&mut self, best: &Options) -> Result<(), SessionError> {
        (**self).revert_to(best)
    }
}

// ---------------------------------------------------------------------------
// OfflineTarget — the paper's reopen-per-run cycle
// ---------------------------------------------------------------------------

/// The original measurement cycle: a fresh simulated environment and a
/// fresh [`Db`] per run, forked from a once-preloaded base image.
///
/// Call-for-call identical to the pre-refactor `TuningSession::run`
/// internals, so `repro` goldens stay byte-identical.
pub struct OfflineTarget {
    env_spec: EnvSpec,
    spec: BenchmarkSpec,
    /// `None` until the first `measure`; then `Some(base)` where `base`
    /// is the preloaded image (or `None` when the spec has no preload).
    base_vfs: Option<Option<MemVfs>>,
}

impl OfflineTarget {
    /// Creates the target. Preloading happens lazily on the first
    /// `measure` call, with that call's options (the session baseline).
    pub fn new(env_spec: EnvSpec, spec: BenchmarkSpec) -> Self {
        OfflineTarget {
            env_spec,
            spec,
            base_vfs: None,
        }
    }

    fn ensure_preloaded(&mut self, opts: &Options) -> Result<(), SessionError> {
        if self.base_vfs.is_some() {
            return Ok(());
        }
        let base = if self.spec.preload_keys > 0 {
            let env = self.env_spec.build();
            let vfs = MemVfs::new();
            {
                let db = Db::builder(opts.clone())
                    .env(&env)
                    .vfs(Arc::new(vfs.clone()))
                    .open()?;
                let mut preload_spec = self.spec.clone();
                preload_spec.num_ops = 0;
                run_benchmark(&db, &env, &preload_spec, None)?;
            }
            Some(vfs)
        } else {
            None
        };
        self.base_vfs = Some(base);
        Ok(())
    }
}

impl TuningTarget for OfflineTarget {
    fn environment_text(&self) -> String {
        self.env_spec.describe()
    }

    fn workload_short(&self) -> String {
        self.spec.workload.short_name().to_string()
    }

    fn workload_text(&self) -> String {
        self.spec.describe()
    }

    fn measure(
        &mut self,
        opts: &Options,
        reference: Option<f64>,
        want_stats_dump: bool,
    ) -> Result<Measurement, SessionError> {
        self.ensure_preloaded(opts)?;
        let base = self.base_vfs.as_ref().expect("preload ran");
        let run_spec = {
            let mut s = self.spec.clone();
            if base.is_some() {
                s.preload_keys = 0;
            }
            s
        };
        let env = self.env_spec.build();
        let vfs: MemVfs = base.as_ref().map(MemVfs::fork).unwrap_or_default();
        let db = Db::builder(opts.clone()).env(&env).vfs(Arc::new(vfs)).open()?;
        let mut early = reference.map(EarlyStopMonitor::new);
        let mut cb = |s: &MonitorSample| -> MonitorControl {
            early
                .as_mut()
                .map(|m| m.observe(s))
                .unwrap_or(MonitorControl::Continue)
        };
        let report = run_benchmark(&db, &env, &run_spec, Some(&mut cb))?;
        let stats_dump = want_stats_dump.then(|| db.stats_text());
        let text = report.to_db_bench_text();
        let parsed = parse_db_bench_output(&text).unwrap_or_else(|| ParsedBench {
            workload: run_spec.workload.name().to_string(),
            ops_per_sec: report.ops_per_sec,
            micros_per_op: report.micros_per_op,
            ops: report.ops,
            aborted: report.aborted,
            ..ParsedBench::default()
        });
        Ok(Measurement {
            parsed,
            env,
            stats_dump,
        })
    }
}

// ---------------------------------------------------------------------------
// LiveTarget — retune a running kv_server over the wire
// ---------------------------------------------------------------------------

/// One observed throughput window on a live server.
#[derive(Debug, Clone)]
pub struct LiveWindow {
    /// Keys written during the window (ticker delta).
    pub writes: u64,
    /// Keys read during the window (point + batched lookups).
    pub reads: u64,
    /// Combined throughput over the wall-clock window.
    pub ops_per_sec: f64,
    /// Writes as a fraction of all observed operations (0..1), or
    /// `None` for an idle window.
    pub write_fraction: Option<f64>,
    /// Change in write fraction versus the session's first non-idle
    /// window — the read/write-ratio drift signal.
    pub drift: Option<f64>,
    /// `options_changed` ticker increments observed while this window's
    /// configuration was applied — confirms a SetOptions batch landed
    /// without a reopen.
    pub options_changed_delta: u64,
    /// Option names the server rejected as immutable (skipped, not
    /// applied; the rest of the diff still went through).
    pub skipped_immutable: Vec<String>,
}

/// Points the tuning loop at a running `kv_server`.
///
/// Instead of reopening a database per candidate, `measure`:
///
/// 1. diffs the candidate against the configuration it last applied and
///    ships only the changes via the SetOptions RPC (immutable options
///    the server rejects are dropped from the diff and recorded, so a
///    live session survives a model proposing `num_shards`);
/// 2. sleeps for the observation window while the server keeps serving
///    its real traffic;
/// 3. computes throughput and read/write mix from Stats-RPC ticker
///    deltas (`keys_written` + `keys_read` + `multi_get_keys`), and
///    confirms the reconfiguration via the `options_changed` ticker.
///
/// The caller must start the session from the options the server was
/// launched with — the first `measure` records them as the live
/// configuration without issuing an RPC.
pub struct LiveTarget {
    remote: RemoteDb,
    env_spec: EnvSpec,
    window: Duration,
    workload_text: String,
    /// Mirror of the configuration currently in force on the server.
    current: Option<Options>,
    baseline_write_fraction: Option<f64>,
    windows: Vec<LiveWindow>,
}

impl LiveTarget {
    /// Creates a live target over an established connection pool.
    ///
    /// `env_spec` describes the server's hardware for prompt context;
    /// `window` is how long each throughput observation lasts.
    pub fn new(remote: RemoteDb, env_spec: EnvSpec, window: Duration) -> Self {
        LiveTarget {
            remote,
            env_spec,
            window,
            workload_text: "live traffic against a running kv_server \
                            (throughput measured from server ticker deltas)"
                .to_string(),
            current: None,
            baseline_write_fraction: None,
            windows: Vec::new(),
        }
    }

    /// Overrides the workload description shown to the model.
    #[must_use]
    pub fn with_workload_text(mut self, text: impl Into<String>) -> Self {
        self.workload_text = text.into();
        self
    }

    /// Every window observed so far, in measurement order.
    pub fn windows(&self) -> &[LiveWindow] {
        &self.windows
    }

    /// Applies `current -> opts` over the wire; returns the names the
    /// server rejected as immutable (those stay at their old values in
    /// the mirror).
    fn apply_diff(&mut self, opts: &Options) -> Result<Vec<String>, SessionError> {
        let Some(current) = self.current.as_mut() else {
            // First call: the server is already running this config.
            self.current = Some(opts.clone());
            return Ok(Vec::new());
        };
        let diff = current.diff(opts);
        if diff.is_empty() {
            return Ok(Vec::new());
        }
        let pairs: Vec<(&str, &str)> = diff.iter().map(|(n, _, to)| (n.as_str(), to.as_str())).collect();
        let acks = self.remote.set_options_detailed(&pairs)?;
        let rejected: Vec<String> = acks
            .iter()
            .filter_map(|a| match a {
                OptionAck::Rejected { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        let final_acks = if rejected.is_empty() {
            acks
        } else {
            // A rejected pair voids the whole batch; retry without the
            // immutable names so the mutable part of the diff lands.
            let retained: Vec<(&str, &str)> = pairs
                .iter()
                .filter(|(n, _)| !rejected.iter().any(|r| r == n))
                .copied()
                .collect();
            if retained.is_empty() {
                Vec::new()
            } else {
                self.remote.set_options_detailed(&retained)?
            }
        };
        for ack in &final_acks {
            match ack {
                OptionAck::Applied { name, to, .. } => {
                    current.set_by_name(name, to)?;
                }
                OptionAck::Rejected { name, error } => {
                    // Retry batch should not reject; treat as fatal.
                    return Err(SessionError::Engine(lsm_kvs::Error::new(
                        error.kind(),
                        format!("{name}: {}", error.message()),
                    )));
                }
                OptionAck::Unchanged { .. } | OptionAck::Skipped { .. } => {}
            }
        }
        Ok(rejected)
    }
}

impl TuningTarget for LiveTarget {
    fn environment_text(&self) -> String {
        format!("{} (live server at {})", self.env_spec.describe(), self.remote.addr())
    }

    fn workload_short(&self) -> String {
        "live".to_string()
    }

    fn workload_text(&self) -> String {
        self.workload_text.clone()
    }

    fn measure(
        &mut self,
        opts: &Options,
        _reference: Option<f64>,
        want_stats_dump: bool,
    ) -> Result<Measurement, SessionError> {
        let (_, pre) = self.remote.fetch_stats()?;
        let skipped_immutable = self.apply_diff(opts)?;
        let (_, s0) = self.remote.fetch_stats()?;
        std::thread::sleep(self.window);
        let (text, s1) = self.remote.fetch_stats()?;

        let d = s1.tickers.delta_since(&s0.tickers);
        let writes = d.get(Ticker::KeysWritten);
        let reads = d.get(Ticker::KeysRead) + d.get(Ticker::MultiGetKeys);
        let ops = writes + reads;
        let secs = self.window.as_secs_f64().max(1e-9);
        let ops_per_sec = ops as f64 / secs;
        let micros_per_op = if ops > 0 { secs * 1e6 / ops as f64 } else { 0.0 };

        let write_fraction = (ops > 0).then(|| writes as f64 / ops as f64);
        if self.baseline_write_fraction.is_none() {
            self.baseline_write_fraction = write_fraction;
        }
        let drift = match (write_fraction, self.baseline_write_fraction) {
            (Some(now), Some(base)) => Some(now - base),
            _ => None,
        };
        let options_changed_delta = s1
            .tickers
            .delta_since(&pre.tickers)
            .get(Ticker::OptionsChanged);

        let window = LiveWindow {
            writes,
            reads,
            ops_per_sec,
            write_fraction,
            drift,
            options_changed_delta,
            skipped_immutable,
        };

        let stats_dump = want_stats_dump.then(|| {
            let mut t = text.clone();
            t.push_str(&format!(
                "\nLive window ({}ms): {:.0} ops/sec, {} writes / {} reads",
                self.window.as_millis(),
                ops_per_sec,
                writes,
                reads,
            ));
            if let (Some(wf), Some(dr)) = (window.write_fraction, window.drift) {
                t.push_str(&format!(
                    ", write fraction {:.2} (drift {:+.2} vs session start)",
                    wf, dr
                ));
            }
            t
        });
        self.windows.push(window);

        let parsed = ParsedBench {
            workload: "live".to_string(),
            ops_per_sec,
            micros_per_op,
            ops,
            aborted: false,
            ..ParsedBench::default()
        };
        Ok(Measurement {
            parsed,
            env: self.env_spec.build(),
            stats_dump,
        })
    }

    fn revert_to(&mut self, best: &Options) -> Result<(), SessionError> {
        self.apply_diff(best)?;
        Ok(())
    }
}
