//! Wall-clock crash-loop driver (`db_bench --crash-loop N`).
//!
//! Each cycle opens the database in real-concurrency mode through a
//! [`FaultInjectionVfs`], runs a multi-threaded fillrandom-style workload
//! (mixed synced/unsynced writes, occasional injected error bursts), cuts
//! power at a random moment — optionally tearing the last in-flight
//! write — reboots, reopens, and verifies the durability contract:
//! every synced-acknowledged write survives, and no key ever surfaces a
//! value that was never written.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hw_sim::HardwareEnv;
use lsm_kvs::options::Options;
use lsm_kvs::{
    Db, Error, FaultConfig, FaultInjectionVfs, MemVfs, StdVfs, TearStyle, Vfs, WriteBatch,
    WriteOptions,
};

/// xorshift64* RNG — the harness must be deterministic apart from thread
/// interleaving.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Per-key attempt history since the last verified baseline:
/// `(value, synced-and-acknowledged)`.
type History = HashMap<Vec<u8>, Vec<(Vec<u8>, bool)>>;

/// Summary of a completed crash loop.
#[derive(Debug, Clone, Default)]
pub struct CrashLoopOutcome {
    /// Crash/recovery cycles completed.
    pub cycles: u64,
    /// Writes acknowledged with `sync = true` across all cycles.
    pub acked_writes: u64,
    /// Total write attempts (acked or not).
    pub attempted_writes: u64,
    /// Keys checked during post-crash verification passes.
    pub verified_keys: u64,
    /// I/O errors injected by the fault layer.
    pub injected_errors: u64,
    /// Reboots that tore the last in-flight write.
    pub torn_reboots: u64,
}

impl CrashLoopOutcome {
    /// db_bench-style one-paragraph summary.
    pub fn to_text(&self) -> String {
        format!(
            "crash-loop: {} cycles, {} acked / {} attempted writes, \
             {} keys verified, {} injected errors, {} torn reboots, 0 acked writes lost",
            self.cycles,
            self.acked_writes,
            self.attempted_writes,
            self.verified_keys,
            self.injected_errors,
            self.torn_reboots,
        )
    }
}

/// Runs `cycles` crash/recover cycles against `dir` (a real directory; a
/// fresh in-memory store when `None`).
///
/// # Errors
///
/// Returns [`ErrorKind::Corruption`](lsm_kvs::ErrorKind) if recovery ever
/// loses an acknowledged write or surfaces a value that was never
/// written, and propagates reopen errors (a reopen after a crash must
/// always succeed).
pub fn run_crash_loop(
    base_opts: &Options,
    cycles: u64,
    dir: Option<&str>,
    threads: usize,
    seed: u64,
) -> lsm_kvs::Result<CrashLoopOutcome> {
    let base: Arc<dyn Vfs> = match dir {
        Some(d) => Arc::new(StdVfs::new(d)?),
        None => Arc::new(MemVfs::new()),
    };
    let fault = FaultInjectionVfs::wrap(base);
    let threads = threads.clamp(1, 8);
    let mut rng = Rng::new(seed);
    let mut outcome = CrashLoopOutcome::default();
    // Thread-owned histories, merged after each cycle. Threads write
    // disjoint key ranges so ack ordering is never racy across threads.
    let mut history: History = HashMap::new();

    for cycle in 0..cycles {
        fault.clear_faults();
        let env = HardwareEnv::builder().build_wall();
        let db = Db::builder(base_opts.clone())
            .env(&env)
            .vfs(Arc::new(fault.clone()))
            .open()?;

        // Verify everything the previous crash left behind. Recovery has
        // re-synced the recovered state, so whatever we observe becomes
        // the new durable baseline.
        for (key, hist) in history.iter() {
            let got = db.get(key)?;
            check_recovered(key, hist, &got)?;
            outcome.verified_keys += 1;
        }
        for (key, hist) in std::mem::take(&mut history) {
            if let Some(v) = db.get(&key)? {
                history.insert(key, vec![(v, true)]);
            } else {
                drop(hist);
            }
        }

        // Workload: each thread owns key suffix `t`, so per-key attempt
        // order is a single thread's program order.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..threads {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let mut trng = Rng::new(seed ^ (cycle << 8) ^ t as u64);
            handles.push(std::thread::spawn(move || {
                let mut hist: History = HashMap::new();
                let mut acked = 0u64;
                let mut attempted = 0u64;
                for op in 0..20_000u64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let key = format!("key-{:04}-{t}", trng.below(500)).into_bytes();
                    let value =
                        format!("c{cycle}-t{t}-o{op}-{}", trng.next()).into_bytes();
                    let sync = trng.chance(0.35);
                    let mut batch = WriteBatch::new();
                    batch.put(&key, &value);
                    let res = db.write_opt(&WriteOptions { sync }, batch);
                    attempted += 1;
                    let ok = res.is_ok();
                    if ok && sync {
                        acked += 1;
                    }
                    hist.entry(key).or_default().push((value, ok && sync));
                }
                (hist, acked, attempted)
            }));
        }

        // Let the workload run, maybe inject a transient error burst,
        // then cut power mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(10 + rng.below(40)));
        if rng.chance(0.4) {
            fault.set_config(FaultConfig {
                write_error_prob: 0.01,
                sync_error_prob: 0.01,
                errors_are_retryable: true,
                ..FaultConfig::default()
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            fault.clear_faults();
        }
        fault.power_off();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let (hist, acked, attempted) = h.join().expect("worker panicked");
            for (k, mut v) in hist {
                history.entry(k).or_default().append(&mut v);
            }
            outcome.acked_writes += acked;
            outcome.attempted_writes += attempted;
        }
        drop(db);
        if rng.chance(0.5) {
            outcome.torn_reboots += 1;
            fault.reboot(TearStyle::TearTail { seed: rng.next() });
        } else {
            fault.reboot(TearStyle::DropUnsynced);
        }
        outcome.cycles += 1;
    }

    // Final reopen: the last crash must also verify clean.
    fault.clear_faults();
    let env = HardwareEnv::builder().build_wall();
    let db = Db::builder(base_opts.clone())
        .env(&env)
        .vfs(Arc::new(fault.clone()))
        .open()?;
    for (key, hist) in history.iter() {
        let got = db.get(key)?;
        check_recovered(key, hist, &got)?;
        outcome.verified_keys += 1;
    }
    outcome.injected_errors = fault.injected_errors();
    Ok(outcome)
}

/// The durability contract for one key: WAL replay recovers a prefix of
/// the write sequence containing at least every synced-acknowledged
/// record, so the recovered value must stem from the last synced-acked
/// attempt or any later one (and a key with no synced ack may have lost
/// everything).
fn check_recovered(
    key: &[u8],
    hist: &[(Vec<u8>, bool)],
    got: &Option<Vec<u8>>,
) -> lsm_kvs::Result<()> {
    let last_ack = hist.iter().rposition(|(_, acked)| *acked);
    let valid = match (last_ack, got) {
        (Some(j), Some(v)) => hist[j..].iter().any(|(cand, _)| cand == v),
        (Some(_), None) => false,
        (None, Some(v)) => hist.iter().any(|(cand, _)| cand == v),
        (None, None) => true,
    };
    if valid {
        Ok(())
    } else {
        Err(Error::corruption(format!(
            "crash-loop: key {:?} recovered {:?}, violating the acked-write contract \
             ({} attempts, last synced ack at {:?})",
            String::from_utf8_lossy(key),
            got.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
            hist.len(),
            last_ack,
        )))
    }
}
