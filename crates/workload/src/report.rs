//! Benchmark reports: structured results plus db_bench-style text.
//!
//! ELMo-Tune's "Benchmark Parser" consumes the *text* form, mirroring
//! how the paper's framework scrapes db_bench output rather than linking
//! against the store.

use hw_sim::SimDuration;
use lsm_kvs::{HistogramSnapshot, Ticker, TickerSnapshot};
use serde::{Deserialize, Serialize};

/// One periodic progress sample from the benchmark monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorSample {
    /// Simulated seconds since the measured phase began.
    pub at_secs: f64,
    /// Operations completed in the sample interval.
    pub interval_ops: u64,
    /// Interval throughput in ops/sec.
    pub interval_ops_per_sec: f64,
    /// CPU utilization percent at the sample.
    pub cpu_util_percent: f64,
    /// Memory pressure (fraction of usable budget).
    pub mem_pressure: f64,
}

/// What the monitor callback wants the runner to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorControl {
    /// Keep running.
    Continue,
    /// Abort the benchmark (early stop / redo).
    Stop,
}

/// Structured result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// db_bench benchmark name.
    pub workload: String,
    /// Short label (FR/RR/RRWR/Mixgraph).
    pub short_name: String,
    /// Operations completed.
    pub ops: u64,
    /// Reads that found their key.
    pub found: u64,
    /// Measured-phase duration.
    pub duration: SimDuration,
    /// Overall throughput in ops/sec.
    pub ops_per_sec: f64,
    /// Mean microseconds per operation.
    pub micros_per_op: f64,
    /// Write-latency quantiles (None when the workload has no writes).
    pub write_latency: Option<HistogramSnapshot>,
    /// Read-latency quantiles (None when the workload has no reads).
    pub read_latency: Option<HistogramSnapshot>,
    /// Engine ticker deltas over the run.
    pub tickers: TickerSnapshot,
    /// `(files, bytes)` per level at the end of the run.
    pub levels: Vec<(usize, u64)>,
    /// Monitor samples.
    pub samples: Vec<MonitorSample>,
    /// Whether the run was aborted by the monitor.
    pub aborted: bool,
}

impl BenchReport {
    /// p99 write latency in microseconds (0 when absent).
    pub fn p99_write_micros(&self) -> f64 {
        self.write_latency.map(|h| h.p99.as_micros_f64()).unwrap_or(0.0)
    }

    /// p99 read latency in microseconds (0 when absent).
    pub fn p99_read_micros(&self) -> f64 {
        self.read_latency.map(|h| h.p99.as_micros_f64()).unwrap_or(0.0)
    }

    /// Block-cache hit ratio over the run.
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits = self.tickers.get(Ticker::BlockCacheHit) as f64;
        let misses = self.tickers.get(Ticker::BlockCacheMiss) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Time spent in write stalls/slowdowns, in seconds.
    pub fn stall_seconds(&self) -> f64 {
        self.tickers.get(Ticker::StallNanos) as f64 / 1e9
    }

    /// Renders the report in db_bench's output style.
    pub fn to_db_bench_text(&self) -> String {
        let mut out = String::new();
        out.push_str("DB path: [/sim/db]\n");
        let mb_per_sec = (self.tickers.get(Ticker::BytesWritten)
            + self.tickers.get(Ticker::BytesRead)) as f64
            / (1 << 20) as f64
            / self.duration.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "{:<12} : {:>10.3} micros/op {} ops/sec {:.3} seconds {} operations; {:>6.1} MB/s",
            self.workload,
            self.micros_per_op,
            self.ops_per_sec.round() as u64,
            self.duration.as_secs_f64(),
            self.ops,
            mb_per_sec
        ));
        if self.read_latency.is_some() {
            out.push_str(&format!(" ({} of {} found)", self.found, self.reads_issued()));
        }
        out.push('\n');
        if self.aborted {
            out.push_str("WARNING: benchmark aborted early by monitor\n");
        }
        if let Some(h) = &self.write_latency {
            out.push_str(&render_histogram("write", h));
        }
        if let Some(h) = &self.read_latency {
            out.push_str(&render_histogram("read", h));
        }
        out.push_str("\nSTATISTICS:\n");
        for (name, value) in lsm_kvs::TICKER_NAMES.iter().zip(self.tickers.values.iter()) {
            out.push_str(&format!("rocksdb.{name} COUNT : {value}\n"));
        }
        out.push_str(&format!(
            "rocksdb.block.cache.hit.ratio PERCENT : {:.1}\n",
            self.cache_hit_ratio() * 100.0
        ));
        out.push_str(&format!(
            "rocksdb.stall.seconds SUM : {:.3}\n",
            self.stall_seconds()
        ));
        out.push_str("\nLevel summary:\n");
        for (level, (files, bytes)) in self.levels.iter().enumerate() {
            out.push_str(&format!(
                "  L{level}: {files} files, {:.1} MB\n",
                *bytes as f64 / (1 << 20) as f64
            ));
        }
        out
    }

    fn reads_issued(&self) -> u64 {
        // Keys read, not histogram samples: a multi_get batch records
        // one latency sample but reads many keys. Writes always record
        // one sample per key, so the difference is the read count.
        if self.read_latency.is_none() {
            return 0;
        }
        self.ops.saturating_sub(self.write_latency.map(|h| h.count).unwrap_or(0))
    }
}

fn render_histogram(op: &str, h: &HistogramSnapshot) -> String {
    format!(
        "Microseconds per {op}:\nCount: {} Average: {:.4} StdDev: {:.2}\n\
         Min: {:.2} Median: {:.2} Max: {:.2}\n\
         Percentiles: P50: {:.2} P75: {:.2} P99: {:.2} P99.9: {:.2} P99.99: {:.2}\n\
         ------------------------------------------------------\n",
        h.count,
        h.mean.as_micros_f64(),
        h.stddev.as_micros_f64(),
        h.min.as_micros_f64(),
        h.p50.as_micros_f64(),
        h.max.as_micros_f64(),
        h.p50.as_micros_f64(),
        h.p75.as_micros_f64(),
        h.p99.as_micros_f64(),
        h.p999.as_micros_f64(),
        h.p9999.as_micros_f64(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(p99_us: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count: 1000,
            mean: SimDuration::from_micros(3),
            min: SimDuration::from_micros(1),
            p50: SimDuration::from_micros(2),
            p75: SimDuration::from_micros(3),
            p99: SimDuration::from_micros(p99_us),
            p999: SimDuration::from_micros(p99_us * 2),
            p9999: SimDuration::from_micros(p99_us * 4),
            stddev: SimDuration::from_micros(1),
            max: SimDuration::from_micros(p99_us * 10),
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            workload: "fillrandom".into(),
            short_name: "FR".into(),
            ops: 1000,
            found: 0,
            duration: SimDuration::from_secs(2),
            ops_per_sec: 500.0,
            micros_per_op: 2000.0,
            write_latency: Some(snapshot(6)),
            read_latency: None,
            tickers: TickerSnapshot {
                values: [0; lsm_kvs::TICKER_NAMES.len()],
            },
            levels: vec![(2, 1 << 20); 7],
            samples: vec![],
            aborted: false,
        }
    }

    #[test]
    fn text_has_db_bench_headline() {
        let text = report().to_db_bench_text();
        assert!(text.contains("fillrandom"));
        assert!(text.contains("micros/op"));
        assert!(text.contains("500 ops/sec"));
        assert!(text.contains("Microseconds per write:"));
        assert!(text.contains("P99: 6.00"));
        assert!(text.contains("P99.99: 24.00"));
        assert!(text.contains("StdDev: 1.00"));
        assert!(text.contains("STATISTICS:"));
        assert!(text.contains("Level summary:"));
    }

    #[test]
    fn found_clause_only_for_reads() {
        let mut r = report();
        assert!(!r.to_db_bench_text().contains("found"));
        r.read_latency = Some(snapshot(100));
        r.found = 900;
        r.ops = 2000; // 1000 writes (histogram) + 1000 reads
        assert!(r.to_db_bench_text().contains("(900 of 1000 found)"));
    }

    #[test]
    fn aborted_flag_renders_warning() {
        let mut r = report();
        r.aborted = true;
        assert!(r.to_db_bench_text().contains("aborted early"));
    }

    #[test]
    fn helper_metrics() {
        let mut r = report();
        assert_eq!(r.p99_write_micros(), 6.0);
        assert_eq!(r.p99_read_micros(), 0.0);
        r.tickers.values[0] = 75; // block_cache_hit
        r.tickers.values[1] = 25; // block_cache_miss
        assert!((r.cache_hit_ratio() - 0.75).abs() < 1e-9);
    }
}
