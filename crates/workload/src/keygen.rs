//! Key and value generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates fixed-width keys over a bounded key space.
///
/// Keys render as zero-padded decimal indices (like db_bench's default
/// key format), so lexicographic order equals numeric order.
#[derive(Debug)]
pub struct KeyGenerator {
    rng: StdRng,
    key_space: u64,
    key_size: usize,
    distribution: KeyDistribution,
}

/// How key indices are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over the key space.
    Uniform,
    /// Sequential (wraps at the key space).
    Sequential {
        /// Next index to emit.
        next: u64,
    },
    /// Power-law popularity: rank `r` drawn with P(r) proportional to
    /// `r^-alpha`, then mapped through a pseudo-random permutation so hot
    /// keys scatter across the key space (the FAST '20 mixgraph shape).
    PowerLaw {
        /// Skew exponent; 0 = uniform, ~0.9 = Facebook-like.
        alpha: f64,
    },
}

impl KeyGenerator {
    /// Creates a generator for `key_space` distinct keys of `key_size`
    /// bytes.
    pub fn new(seed: u64, key_space: u64, key_size: usize, distribution: KeyDistribution) -> Self {
        KeyGenerator {
            rng: StdRng::seed_from_u64(seed),
            key_space: key_space.max(1),
            key_size: key_size.max(4),
            distribution,
        }
    }

    /// Draws the next key index.
    pub fn next_index(&mut self) -> u64 {
        match &mut self.distribution {
            KeyDistribution::Uniform => self.rng.gen_range(0..self.key_space),
            KeyDistribution::Sequential { next } => {
                let v = *next % self.key_space;
                *next += 1;
                v
            }
            KeyDistribution::PowerLaw { alpha } => {
                // Inverse-CDF sampling of a bounded Pareto over ranks
                // [1, key_space], then a multiplicative-hash permutation.
                let a = *alpha;
                let u: f64 = self.rng.gen_range(0.0f64..1.0);
                let n = self.key_space as f64;
                let rank = if a <= 0.0 {
                    (u * n) as u64
                } else if (a - 1.0).abs() < 1e-9 {
                    (n.powf(u) - 1.0) as u64
                } else {
                    let one_minus_a = 1.0 - a;
                    (((n.powf(one_minus_a) - 1.0) * u + 1.0).powf(1.0 / one_minus_a) - 1.0) as u64
                };
                let rank = rank.min(self.key_space - 1);
                // Scatter ranks over the space deterministically.
                rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.key_space
            }
        }
    }

    /// Renders an index as a key.
    pub fn key_for(&self, index: u64) -> Vec<u8> {
        render_key(index, self.key_size)
    }

    /// Draws and renders the next key.
    pub fn next_key(&mut self) -> Vec<u8> {
        let idx = self.next_index();
        self.key_for(idx)
    }
}

/// Renders a key index as `key_size` bytes of zero-padded decimal.
pub fn render_key(index: u64, key_size: usize) -> Vec<u8> {
    let digits = format!("{index:020}");
    let mut key = vec![b'0'; key_size.max(4)];
    let take = digits.len().min(key.len());
    let dst_start = key.len() - take;
    let src_start = digits.len() - take;
    key[dst_start..].copy_from_slice(&digits.as_bytes()[src_start..]);
    key
}

/// Generates values with controlled compressibility.
#[derive(Debug)]
pub struct ValueGenerator {
    rng: StdRng,
    value_size: usize,
    /// Fraction of bytes that are random (incompressible).
    entropy: f64,
    pareto: Option<(f64, usize)>, // (shape, min)
}

impl ValueGenerator {
    /// Fixed-size values with `entropy` incompressible fraction
    /// (db_bench's `compression_ratio` knob; 0.5 by default).
    pub fn fixed(seed: u64, value_size: usize, entropy: f64) -> Self {
        ValueGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0xbeef),
            value_size,
            entropy: entropy.clamp(0.0, 1.0),
            pareto: None,
        }
    }

    /// Pareto-distributed value sizes with mean near `value_size`
    /// (the mixgraph value model).
    pub fn pareto(seed: u64, value_size: usize, shape: f64, min: usize) -> Self {
        ValueGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0xbeef),
            value_size,
            entropy: 0.5,
            pareto: Some((shape.max(1.05), min.max(1))),
        }
    }

    /// Generates the next value.
    pub fn next_value(&mut self) -> Vec<u8> {
        let size = match self.pareto {
            None => self.value_size,
            Some((shape, min)) => {
                // Bounded Pareto draw with mean steered toward value_size.
                let u: f64 = self.rng.gen_range(1e-9f64..1.0);
                let scale = min as f64;
                let raw = scale / u.powf(1.0 / shape);
                (raw as usize).clamp(min, self.value_size * 20)
            }
        };
        let random_bytes = (size as f64 * self.entropy) as usize;
        let mut v = vec![0u8; size];
        for byte in v.iter_mut().take(random_bytes) {
            *byte = self.rng.gen();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_key_is_order_preserving_and_sized() {
        let a = render_key(5, 16);
        let b = render_key(50, 16);
        assert_eq!(a.len(), 16);
        assert!(a < b);
    }

    #[test]
    fn uniform_covers_space() {
        let mut g = KeyGenerator::new(1, 1000, 16, KeyDistribution::Uniform);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let idx = g.next_index();
            assert!(idx < 1000);
            seen.insert(idx);
        }
        assert!(seen.len() > 950, "covered {}", seen.len());
    }

    #[test]
    fn sequential_wraps() {
        let mut g = KeyGenerator::new(1, 3, 16, KeyDistribution::Sequential { next: 0 });
        let idxs: Vec<u64> = (0..6).map(|_| g.next_index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn power_law_is_skewed() {
        let mut g = KeyGenerator::new(1, 100_000, 16, KeyDistribution::PowerLaw { alpha: 0.92 });
        let mut counts = std::collections::HashMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts.entry(g.next_index()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u64 = freqs.iter().take(100).sum();
        // Under uniform, 100 keys would get ~0.1% of draws; skew should
        // give the top 100 keys far more.
        assert!(
            top100 as f64 / draws as f64 > 0.05,
            "top-100 share {}",
            top100 as f64 / draws as f64
        );
    }

    #[test]
    fn power_law_deterministic_per_seed() {
        let mut a = KeyGenerator::new(7, 1000, 16, KeyDistribution::PowerLaw { alpha: 0.9 });
        let mut b = KeyGenerator::new(7, 1000, 16, KeyDistribution::PowerLaw { alpha: 0.9 });
        for _ in 0..100 {
            assert_eq!(a.next_index(), b.next_index());
        }
    }

    #[test]
    fn fixed_values_half_compressible() {
        let mut g = ValueGenerator::fixed(1, 100, 0.5);
        let v = g.next_value();
        assert_eq!(v.len(), 100);
        let zeros = v.iter().filter(|b| **b == 0).count();
        assert!(zeros >= 50, "zeros {zeros}");
    }

    #[test]
    fn pareto_values_vary_but_bounded() {
        let mut g = ValueGenerator::pareto(1, 100, 2.0, 60);
        let sizes: Vec<usize> = (0..1000).map(|_| g.next_value().len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 60);
        assert!(max > min, "sizes should vary");
        assert!(max <= 2000);
    }
}
