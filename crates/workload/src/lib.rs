//! # db-bench — workload generation and benchmarking for `lsm-kvs`
//!
//! A faithful stand-in for RocksDB's `db_bench` covering the four
//! workloads of the ELMo-Tune paper (§5.1): `fillrandom`, `readrandom`,
//! `readrandomwriterandom`, and `mixgraph` (the FAST '20 Facebook
//! production model), run over deterministic virtual client threads with
//! db_bench-style text reports.
//!
//! ```
//! use db_bench::{run_benchmark, BenchmarkSpec};
//! use lsm_kvs::{options::Options, Db};
//!
//! # fn main() -> Result<(), lsm_kvs::Error> {
//! let env = hw_sim::HardwareEnv::builder().build_sim();
//! let db = Db::builder(Options::default()).env(&env).open()?;
//! let mut spec = BenchmarkSpec::fillrandom(1.0);
//! spec.num_ops = 2_000; // scaled down for the doctest
//! spec.key_space = 2_000;
//! let report = run_benchmark(&db, &env, &spec, None)?;
//! assert!(report.ops_per_sec > 0.0);
//! println!("{}", report.to_db_bench_text());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod crash;
mod keygen;
mod report;
mod runner;
mod spec;

pub use crash::{run_crash_loop, CrashLoopOutcome};
pub use keygen::{render_key, KeyDistribution, KeyGenerator, ValueGenerator};
pub use report::{BenchReport, MonitorControl, MonitorSample};
pub use runner::{run_benchmark, run_benchmark_real};
pub use spec::{BenchmarkSpec, MixgraphConfig, WorkloadKind};
