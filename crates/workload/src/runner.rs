//! The benchmark runner: drives a [`lsm_kvs::Db`] through a
//! [`BenchmarkSpec`] on virtual client threads.
//!
//! Client "threads" are virtual timelines: the runner always advances the
//! thread with the smallest clock, positions the shared simulation clock
//! there, issues one operation (which advances the clock by its cost),
//! and records the delta as that operation's latency. This makes
//! multi-threaded runs deterministic and seed-reproducible.

use hw_sim::{HardwareEnv, SimDuration, SimTime, UtilizationSample};
use lsm_kvs::{Histogram, KvEngine, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keygen::{render_key, KeyDistribution, KeyGenerator, ValueGenerator};
use crate::report::{BenchReport, MonitorControl, MonitorSample};
use crate::spec::{BenchmarkSpec, WorkloadKind};

/// Runs `spec` against `db`, optionally reporting progress to `monitor`.
///
/// The monitor is invoked every `spec.report_interval_ms` of simulated
/// time; returning [`MonitorControl::Stop`] aborts the run (the paper's
/// "constant benchmark monitor for early stop").
///
/// # Errors
///
/// Propagates engine errors (I/O, corruption, stall timeouts).
pub fn run_benchmark<E: KvEngine + ?Sized>(
    db: &E,
    env: &HardwareEnv,
    spec: &BenchmarkSpec,
    mut monitor: Option<&mut dyn FnMut(&MonitorSample) -> MonitorControl>,
) -> Result<BenchReport> {
    // ------------------------------------------------------------------
    // Preload phase (not measured).
    // ------------------------------------------------------------------
    if spec.preload_keys > 0 {
        preload(db, spec)?;
    }

    // ------------------------------------------------------------------
    // Measured phase.
    // ------------------------------------------------------------------
    let tickers_before = db.stats().tickers;
    let start = env.clock().now();

    let mut threads: Vec<ThreadState> = (0..spec.num_threads.max(1))
        .map(|t| ThreadState::new(spec, t as u64, start))
        .collect();

    let mut write_hist = Histogram::new();
    let mut read_hist = Histogram::new();
    let mut samples = Vec::new();
    let mut aborted = false;

    let interval = SimDuration::from_millis(spec.report_interval_ms.max(1));
    let mut next_sample = start + interval;
    let mut ops_at_last_sample = 0u64;
    let mut total_ops = 0u64;
    let mut found = 0u64;

    while total_ops < spec.num_ops {
        // Pick the thread with the smallest virtual time.
        let idx = threads
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.time)
            .map(|(i, _)| i)
            .expect("at least one thread");
        let thread_time = threads[idx].time;

        // Monitor sampling happens on the global (min) timeline.
        if thread_time >= next_sample {
            let interval_ops = total_ops - ops_at_last_sample;
            ops_at_last_sample = total_ops;
            let util = UtilizationSample::capture(env, thread_time, interval_ops);
            let sample = MonitorSample {
                at_secs: thread_time.saturating_since(start).as_secs_f64(),
                interval_ops,
                interval_ops_per_sec: interval_ops as f64 / interval.as_secs_f64(),
                cpu_util_percent: util.cpu_util_percent,
                mem_pressure: util.mem_pressure,
            };
            samples.push(sample);
            next_sample += interval;
            if let Some(cb) = monitor.as_deref_mut() {
                if cb(&sample) == MonitorControl::Stop {
                    aborted = true;
                    break;
                }
            }
            continue;
        }

        env.clock().set(thread_time);
        let op = threads[idx].next_op(spec);
        let before = env.clock().now();
        // Keys covered by this op: 1, or the whole multi_get batch.
        let keys_done = match op {
            Op::Put(key, value) => {
                db.put(&key, &value)?;
                let latency = env.clock().now() - before;
                write_hist.record(latency);
                1
            }
            Op::Get(key) => {
                if db.get(&key)?.is_some() {
                    found += 1;
                }
                let latency = env.clock().now() - before;
                read_hist.record(latency);
                1
            }
            Op::MultiGet(keys) => {
                let got = db.multi_get(&keys)?;
                found += got.iter().filter(|v| v.is_some()).count() as u64;
                let latency = env.clock().now() - before;
                read_hist.record(latency);
                keys.len() as u64
            }
        };
        let mut after = env.clock().now();
        // Mixgraph QPS pacing: space requests along a sine wave.
        if let Some(gap) = threads[idx].pacing_gap(spec, after.saturating_since(start)) {
            let op_latency = after - before;
            if gap > op_latency {
                after += gap.saturating_sub(op_latency);
            }
        }
        threads[idx].time = after;
        total_ops += keys_done;
    }

    // Settle the clock at the max thread time for the duration figure.
    let end = threads.iter().map(|t| t.time).max().unwrap_or(start);
    env.clock().advance_to(end);
    let duration = end.saturating_since(start);

    let stats = db.stats();
    let tickers = stats.tickers.delta_since(&tickers_before);
    let ops_per_sec = total_ops as f64 / duration.as_secs_f64().max(1e-9);
    Ok(BenchReport {
        workload: spec.workload.name().to_string(),
        short_name: spec.workload.short_name().to_string(),
        ops: total_ops,
        found,
        duration,
        ops_per_sec,
        micros_per_op: duration.as_micros_f64() / total_ops.max(1) as f64,
        write_latency: (write_hist.count() > 0).then(|| write_hist.snapshot()),
        read_latency: (read_hist.count() > 0).then(|| read_hist.snapshot()),
        tickers,
        levels: stats.levels,
        samples,
        aborted,
    })
}

/// Runs `spec` against `db` on real OS threads with wall-clock timing.
///
/// This is the measurement path for a [`Db`] opened in real-concurrency
/// mode (wall clock + `StdVfs`): `threads` OS threads share the database
/// and issue `spec.num_ops` operations between them, each thread drawing
/// keys/values from its own generator seeded `spec.seed + t * phi` (the
/// same per-thread derivation the simulated runner uses). Latencies come
/// from `std::time::Instant`, not the virtual clock, and per-thread
/// histograms are merged into the report. `sync` selects durable WAL
/// writes, which is where group commit earns its keep.
///
/// Monitor sampling is not supported here (the report's `samples` list is
/// empty): the monitor protocol is tied to the simulated timeline.
///
/// # Errors
///
/// Propagates the first engine error any thread hits (I/O, corruption,
/// stall timeouts).
pub fn run_benchmark_real<E: KvEngine + ?Sized>(
    db: &E,
    spec: &BenchmarkSpec,
    threads: usize,
    sync: bool,
) -> Result<BenchReport> {
    use lsm_kvs::{WriteBatch, WriteOptions};

    if spec.preload_keys > 0 {
        preload(db, spec)?;
    }

    let tickers_before = db.stats().tickers;
    let threads = threads.max(1);
    let write_opts = if sync {
        WriteOptions::synced()
    } else {
        WriteOptions::default()
    };

    let start = std::time::Instant::now();
    let per_thread: Vec<Result<(Histogram, Histogram, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let write_opts = write_opts.clone();
                let ops = spec.num_ops / threads as u64
                    + u64::from((t as u64) < spec.num_ops % threads as u64);
                scope.spawn(move || -> Result<(Histogram, Histogram, u64, u64)> {
                    let mut state = ThreadState::new(spec, t as u64, SimTime::ZERO);
                    let mut write_hist = Histogram::new();
                    let mut read_hist = Histogram::new();
                    let mut found = 0u64;
                    // `ops` counts keys, so a multi_get batch advances
                    // the loop by its whole batch at once.
                    let mut issued = 0u64;
                    while issued < ops {
                        issued += match state.next_op(spec) {
                            Op::Put(key, value) => {
                                let mut batch = WriteBatch::with_capacity(1);
                                batch.put(&key, &value);
                                let before = std::time::Instant::now();
                                db.write_opt(&write_opts, batch)?;
                                write_hist
                                    .record(SimDuration::from_secs_f64(before.elapsed().as_secs_f64()));
                                1
                            }
                            Op::Get(key) => {
                                let before = std::time::Instant::now();
                                if db.get(&key)?.is_some() {
                                    found += 1;
                                }
                                read_hist
                                    .record(SimDuration::from_secs_f64(before.elapsed().as_secs_f64()));
                                1
                            }
                            Op::MultiGet(keys) => {
                                let before = std::time::Instant::now();
                                let got = db.multi_get(&keys)?;
                                found += got.iter().filter(|v| v.is_some()).count() as u64;
                                read_hist
                                    .record(SimDuration::from_secs_f64(before.elapsed().as_secs_f64()));
                                keys.len() as u64
                            }
                        };
                    }
                    Ok((write_hist, read_hist, found, issued))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .collect()
    });
    let duration = SimDuration::from_secs_f64(start.elapsed().as_secs_f64());

    let mut write_hist = Histogram::new();
    let mut read_hist = Histogram::new();
    let mut found = 0u64;
    let mut total_ops = 0u64;
    for r in per_thread {
        let (w, rd, f, issued) = r?;
        write_hist.merge(&w);
        read_hist.merge(&rd);
        found += f;
        total_ops += issued;
    }

    let stats = db.stats();
    let tickers = stats.tickers.delta_since(&tickers_before);
    Ok(BenchReport {
        workload: spec.workload.name().to_string(),
        short_name: spec.workload.short_name().to_string(),
        ops: total_ops,
        found,
        duration,
        ops_per_sec: total_ops as f64 / duration.as_secs_f64().max(1e-9),
        micros_per_op: duration.as_micros_f64() / total_ops.max(1) as f64,
        write_latency: (write_hist.count() > 0).then(|| write_hist.snapshot()),
        read_latency: (read_hist.count() > 0).then(|| read_hist.snapshot()),
        tickers,
        levels: stats.levels,
        samples: Vec::new(),
        aborted: false,
    })
}

/// Fills the database with `spec.preload_keys` keys in pseudo-random
/// order, then waits for background work so the measured phase starts
/// from a settled tree.
fn preload<E: KvEngine + ?Sized>(db: &E, spec: &BenchmarkSpec) -> Result<()> {
    let n = spec.preload_keys;
    let mut value_gen = ValueGenerator::fixed(spec.seed, spec.value_size, spec.value_entropy);
    // Walk the whole key space in scattered order via `i * mult mod n`,
    // which is a bijection when gcd(mult, n) == 1.
    let mut mult = (0x5851_f42d_4c95_7f2d_u64 % n).max(1);
    while gcd(mult, n) != 1 {
        mult += 1;
    }
    for i in 0..n {
        let idx = ((i as u128 * mult as u128) % n as u128) as u64;
        let key = render_key(idx, spec.key_size);
        db.put(&key, &value_gen.next_value())?;
    }
    db.flush()?;
    db.wait_background_idle()?;
    Ok(())
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

enum Op {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    MultiGet(Vec<Vec<u8>>),
}

struct ThreadState {
    time: SimTime,
    keygen: KeyGenerator,
    valuegen: ValueGenerator,
    rng: StdRng,
}

impl ThreadState {
    fn new(spec: &BenchmarkSpec, thread: u64, start: SimTime) -> ThreadState {
        let seed = spec.seed.wrapping_add(thread.wrapping_mul(0x9e3779b97f4a7c15));
        let distribution = match &spec.workload {
            WorkloadKind::Mixgraph(cfg) => KeyDistribution::PowerLaw { alpha: cfg.key_alpha },
            _ => KeyDistribution::Uniform,
        };
        let valuegen = match &spec.workload {
            WorkloadKind::Mixgraph(cfg) => ValueGenerator::pareto(
                seed,
                spec.value_size,
                cfg.value_pareto_shape,
                cfg.value_min,
            ),
            _ => ValueGenerator::fixed(seed, spec.value_size, spec.value_entropy),
        };
        ThreadState {
            time: start,
            keygen: KeyGenerator::new(seed, spec.key_space.max(1), spec.key_size, distribution),
            valuegen,
            rng: StdRng::seed_from_u64(seed ^ 0xabcdef),
        }
    }

    fn next_op(&mut self, spec: &BenchmarkSpec) -> Op {
        match &spec.workload {
            WorkloadKind::FillRandom => Op::Put(self.keygen.next_key(), self.valuegen.next_value()),
            WorkloadKind::ReadRandom => Op::Get(self.keygen.next_key()),
            WorkloadKind::ReadRandomWriteRandom => {
                if self.rng.gen_range(0..100u32) < spec.read_percent {
                    Op::Get(self.keygen.next_key())
                } else {
                    Op::Put(self.keygen.next_key(), self.valuegen.next_value())
                }
            }
            WorkloadKind::Mixgraph(cfg) => {
                if self.rng.gen_range(0.0f64..1.0) < cfg.read_fraction {
                    Op::Get(self.keygen.next_key())
                } else {
                    Op::Put(self.keygen.next_key(), self.valuegen.next_value())
                }
            }
            WorkloadKind::MultiReadRandom(batch_size) => Op::MultiGet(
                (0..(*batch_size).max(1)).map(|_| self.keygen.next_key()).collect(),
            ),
        }
    }

    /// Sine-modulated pacing for mixgraph: the desired inter-arrival gap
    /// at elapsed time `t`, or `None` for unpaced workloads.
    fn pacing_gap(&mut self, spec: &BenchmarkSpec, elapsed: SimDuration) -> Option<SimDuration> {
        let WorkloadKind::Mixgraph(cfg) = &spec.workload else {
            return None;
        };
        if cfg.qps_sine_amplitude <= 0.0 {
            return None;
        }
        // Base QPS chosen so pacing modulates rather than throttles: an
        // op that is faster than the trough gap gets delayed, slower ops
        // run free.
        let base_gap_us = 8.0; // ~125k ops/sec mean target per thread
        let phase = 2.0 * std::f64::consts::PI * elapsed.as_secs_f64()
            / cfg.qps_sine_period_secs.max(1e-3);
        let factor = 1.0 + cfg.qps_sine_amplitude * phase.sin();
        Some(SimDuration::from_secs_f64(base_gap_us * 1e-6 / factor.max(0.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_sim::DeviceModel;
    use lsm_kvs::options::Options;
    use lsm_kvs::Db;

    fn env() -> HardwareEnv {
        HardwareEnv::builder()
            .cores(4)
            .memory_gib(8)
            .device(DeviceModel::nvme_ssd())
            .build_sim()
    }

    fn small_opts() -> Options {
        Options {
            write_buffer_size: 256 << 10,
            target_file_size_base: 256 << 10,
            max_bytes_for_level_base: 1 << 20,
            ..Options::default()
        }
    }

    fn tiny(mut spec: BenchmarkSpec, ops: u64) -> BenchmarkSpec {
        spec.num_ops = ops;
        spec.key_space = spec.key_space.min(ops.max(1000));
        if spec.preload_keys > 0 {
            spec.preload_keys = ops;
            spec.key_space = ops;
        }
        spec
    }

    #[test]
    fn fillrandom_produces_write_report() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let spec = tiny(BenchmarkSpec::fillrandom(1.0), 5_000);
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        assert_eq!(report.ops, 5_000);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.write_latency.is_some());
        assert!(report.read_latency.is_none());
        assert!(!report.aborted);
        let text = report.to_db_bench_text();
        assert!(text.contains("fillrandom"));
    }

    #[test]
    fn readrandom_preloads_and_finds_keys() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let spec = tiny(BenchmarkSpec::readrandom(1.0), 2_000);
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        assert_eq!(report.ops, 2_000);
        assert!(report.read_latency.is_some());
        // All reads target the preloaded space, so all should be found.
        assert_eq!(report.found, 2_000);
    }

    #[test]
    fn multireadrandom_batches_reads_through_multi_get() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let spec = tiny(BenchmarkSpec::multireadrandom(1.0, 16), 2_000);
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        assert_eq!(report.ops, 2_000, "ops count keys, not batches");
        assert_eq!(report.found, 2_000, "all reads target the preload");
        let reads = report.read_latency.unwrap();
        assert_eq!(reads.count, 2_000 / 16, "one latency sample per batch");
        assert!(
            report.tickers.get(lsm_kvs::Ticker::MultiGetBatches) >= 2_000 / 16,
            "runner must go through the engine's multi_get"
        );
        assert_eq!(report.tickers.get(lsm_kvs::Ticker::MultiGetKeys), 2_000);
    }

    #[test]
    fn rrwr_mixes_reads_and_writes_on_two_threads() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let spec = tiny(BenchmarkSpec::readrandomwriterandom(1.0), 4_000);
        assert_eq!(spec.num_threads, 2);
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        let reads = report.read_latency.unwrap().count;
        let writes = report.write_latency.unwrap().count;
        assert_eq!(reads + writes, 4_000);
        // ~90% reads by default.
        assert!(reads > writes * 4, "reads {reads} writes {writes}");
    }

    #[test]
    fn mixgraph_runs_with_skew_and_pacing() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let spec = tiny(BenchmarkSpec::mixgraph(1.0), 4_000);
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        let reads = report.read_latency.unwrap().count;
        let writes = report.write_latency.unwrap().count;
        assert!(reads > 1_000 && writes > 1_000, "both sides present");
    }

    #[test]
    fn monitor_receives_samples_and_can_abort() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let mut spec = tiny(BenchmarkSpec::fillrandom(1.0), 200_000);
        spec.report_interval_ms = 10;
        let mut calls = 0;
        let mut cb = |_s: &MonitorSample| {
            calls += 1;
            if calls >= 3 {
                MonitorControl::Stop
            } else {
                MonitorControl::Continue
            }
        };
        let report = run_benchmark(&db, &env, &spec, Some(&mut cb)).unwrap();
        assert!(report.aborted);
        assert!(report.ops < 200_000);
        assert!(report.samples.len() >= 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let env = env();
            let db = Db::builder(small_opts()).env(&env).open().unwrap();
            let spec = tiny(BenchmarkSpec::mixgraph(1.0), 3_000);
            let r = run_benchmark(&db, &env, &spec, None).unwrap();
            (r.ops_per_sec, r.found, r.duration)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same hardware => identical results");
    }

    #[test]
    fn two_threads_interleave_in_time_order() {
        let env = env();
        let db = Db::builder(small_opts()).env(&env).open().unwrap();
        let mut spec = tiny(BenchmarkSpec::readrandomwriterandom(1.0), 2_000);
        spec.num_threads = 4;
        let report = run_benchmark(&db, &env, &spec, None).unwrap();
        assert_eq!(report.ops, 2_000);
        // Wall duration should be well below the sum of per-op times
        // (threads overlap).
        let serial_estimate = report.micros_per_op * 2_000.0;
        assert!(report.duration.as_micros_f64() <= serial_estimate + 1.0);
    }
}
