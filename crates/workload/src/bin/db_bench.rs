//! `db_bench` — a CLI mirroring RocksDB's benchmarking tool, running
//! against the simulated `lsm-kvs` engine.
//!
//! ```text
//! db_bench --benchmarks fillrandom --num 1000000 --device nvme \
//!          --cores 4 --mem-gib 4 [--option name=value]...
//! ```
//!
//! With `--real-time`, the run leaves the simulator: the database opens
//! on real files (a temporary directory) with a wall clock, `--threads N`
//! OS threads share it, and latencies are measured with `Instant`.
//!
//! With `--remote host:port`, the benchmark drives a running `kv_server`
//! instead of an in-process engine: each worker thread gets its own TCP
//! connection and measured latencies include the network round trip.

use std::sync::Arc;

use db_bench::{render_key, run_benchmark, run_benchmark_real, run_crash_loop, BenchmarkSpec};
use hw_sim::{DeviceModel, HardwareEnv};
use lsm_kvs::options::Options;
use lsm_kvs::vfs::{MemVfs, StdVfs, Vfs};
use lsm_kvs::{Db, KvEngine, ShardedDb};
use lsm_server::RemoteDb;

/// Opens either a plain [`Db`] (`--shards 1`, the default) or a
/// [`ShardedDb`] facade. The unsharded path stays exactly the plain
/// `Db::builder` path so single-shard runs are byte-identical.
///
/// Benchmark keys are zero-padded decimal, so the engine's default
/// (uniform binary) split points would route every key to shard 0; the
/// boundaries are derived from the benchmark's own key space instead.
fn open_engine(
    opts: &Options,
    shards: i64,
    env: &HardwareEnv,
    vfs: Arc<dyn Vfs>,
    spec: &BenchmarkSpec,
) -> lsm_kvs::Result<Box<dyn KvEngine>> {
    if shards > 1 {
        let mut sopts = opts.clone();
        sopts.num_shards = shards;
        let mut builder = ShardedDb::builder(sopts).env(env);
        // Only a fresh database gets derived boundaries; an existing one
        // already persisted its partitioning in the SHARDS marker, and
        // the engine adopts that on reopen (this benchmark's key space
        // may differ from the one the database was created with).
        if !vfs.exists("SHARDS") {
            let n = shards as u64;
            let points: Vec<Vec<u8>> = (1..n)
                .map(|i| render_key(i * spec.key_space.max(1) / n, spec.key_size))
                .collect();
            builder = builder.split_points(points);
        }
        Ok(Box::new(builder.vfs(vfs).open()?))
    } else {
        Ok(Box::new(Db::builder(opts.clone()).env(env).vfs(vfs).open()?))
    }
}

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("db_bench: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut benchmarks = vec!["fillrandom".to_string()];
    let mut num: Option<u64> = None;
    let mut device = DeviceModel::nvme_ssd();
    let mut cores = 4usize;
    let mut mem_gib = 8u64;
    let mut scale = 0.01f64;
    let mut opts = Options::default();
    let mut options_file: Option<String> = None;
    let mut real_time = false;
    let mut threads: Option<usize> = None;
    let mut sync: Option<bool> = None;
    let mut db_dir: Option<String> = None;
    let mut crash_loop: Option<u64> = None;
    let mut stats_dump = false;
    let mut shards: i64 = 1;
    let mut remote: Option<String> = None;
    let mut batch_size = 16usize;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]).into())
        };
        match args[i].as_str() {
            "--benchmarks" => benchmarks = take(&mut i)?.split(',').map(String::from).collect(),
            "--num" => num = Some(take(&mut i)?.parse()?),
            "--scale" => scale = take(&mut i)?.parse()?,
            "--cores" => cores = take(&mut i)?.parse()?,
            "--mem-gib" => mem_gib = take(&mut i)?.parse()?,
            "--device" => {
                device = match take(&mut i)?.as_str() {
                    "nvme" | "nvme_ssd" => DeviceModel::nvme_ssd(),
                    "sata_ssd" | "ssd" => DeviceModel::sata_ssd(),
                    "hdd" | "sata_hdd" => DeviceModel::sata_hdd(),
                    other => return Err(format!("unknown device: {other}").into()),
                }
            }
            "--option" => {
                let kv = take(&mut i)?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--option wants name=value, got {kv}"))?;
                opts.set_by_name(k, v)?;
            }
            "--options-file" => options_file = Some(take(&mut i)?),
            "--real-time" => real_time = true,
            "--threads" => threads = Some(take(&mut i)?.parse()?),
            "--sync" => sync = Some(take(&mut i)?.parse()?),
            "--db" => db_dir = Some(take(&mut i)?),
            "--crash-loop" => crash_loop = Some(take(&mut i)?.parse()?),
            "--stats_dump" | "--stats-dump" => stats_dump = true,
            "--shards" => shards = take(&mut i)?.parse()?,
            "--remote" => remote = Some(take(&mut i)?),
            "--batch-size" | "--batch_size" => batch_size = take(&mut i)?.parse()?,
            "--help" | "-h" => {
                println!(
                    "usage: db_bench [--benchmarks list] [--num N | --scale F] [--cores N] \
                     [--mem-gib N] [--device nvme|ssd|hdd] [--option k=v]... [--options-file f] \
                     [--stats_dump] [--shards N] [--batch-size N] \
                     [--real-time [--threads N] [--sync true|false] [--db dir]] \
                     [--remote host:port [--threads N] [--sync true|false]] \
                     [--crash-loop N [--db dir]]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }
    if let Some(path) = options_file {
        let text = std::fs::read_to_string(path)?;
        let outcome = lsm_kvs::options::ini::apply_ini(&mut opts, &text);
        for (k, v, why) in &outcome.rejected {
            eprintln!("options-file: ignored {k}={v}: {why}");
        }
    }

    if let Some(cycles) = crash_loop {
        let n_threads = threads.unwrap_or(2);
        eprintln!(
            "running crash loop: {cycles} cycle(s), {n_threads} thread(s), dir={} ...",
            db_dir.as_deref().unwrap_or("<memory>")
        );
        let outcome =
            run_crash_loop(&opts, cycles, db_dir.as_deref(), n_threads, 0x5EED_CA5E)?;
        println!("{}", outcome.to_text());
        return Ok(());
    }

    for name in &benchmarks {
        let mut spec = match name.as_str() {
            "fillrandom" => BenchmarkSpec::fillrandom(scale),
            "readrandom" => BenchmarkSpec::readrandom(scale),
            "readrandomwriterandom" => BenchmarkSpec::readrandomwriterandom(scale),
            "mixgraph" => BenchmarkSpec::mixgraph(scale),
            "multireadrandom" => BenchmarkSpec::multireadrandom(scale, batch_size),
            other => return Err(format!("unknown benchmark: {other}").into()),
        };
        if let Some(n) = num {
            let ratio = n as f64 / spec.num_ops as f64;
            spec.num_ops = n;
            spec.key_space = ((spec.key_space as f64 * ratio) as u64).max(1_000);
            if spec.preload_keys > 0 {
                spec.preload_keys = ((spec.preload_keys as f64 * ratio) as u64).max(1_000);
            }
        }
        if let Some(addr) = &remote {
            // Remote runs are always wall-clock: the server is a separate
            // process, so there is no simulator to consult. Each worker
            // thread checks a dedicated connection out of the client pool.
            let n_threads = threads.unwrap_or(1);
            if let Some(n) = threads {
                spec.num_threads = n;
            }
            let sync = sync.unwrap_or(true);
            let db = RemoteDb::connect(addr)?;
            eprintln!(
                "running {name} against {addr}: {n_threads} thread(s), sync={sync} ..."
            );
            let report = run_benchmark_real(&db, &spec, n_threads, sync)?;
            println!("{}", report.to_db_bench_text());
            if stats_dump {
                // The Stats RPC returns the server's dump (engine stats
                // plus the serving-layer section).
                println!("{}", db.stats_text());
            }
        } else if real_time {
            let n_threads = threads.unwrap_or(1);
            if let Some(n) = threads {
                spec.num_threads = n;
            }
            // Durable writes are the default in real-time mode: unsynced
            // single-op writes mostly measure memcpy speed, while synced
            // writes exercise the group-commit path this mode exists for.
            let sync = sync.unwrap_or(true);
            let env = HardwareEnv::builder()
                .cores(cores)
                .memory_gib(mem_gib)
                .device(device.clone())
                .build_wall();
            let (dir, ephemeral) = match &db_dir {
                Some(d) => (d.clone(), false),
                None => {
                    let d = std::env::temp_dir()
                        .join(format!("db_bench-{name}-{}", std::process::id()));
                    (d.to_string_lossy().into_owned(), true)
                }
            };
            let db = open_engine(&opts, shards, &env, Arc::new(StdVfs::new(&dir)?), &spec)?;
            eprintln!(
                "running {name} for real: {n_threads} thread(s), sync={sync}, \
                 shards={shards}, dir={dir} ..."
            );
            let report = run_benchmark_real(&*db, &spec, n_threads, sync)?;
            // Captured before close: the dump reads engine state.
            let dump = stats_dump.then(|| db.stats_text());
            drop(db);
            if ephemeral {
                let _ = std::fs::remove_dir_all(&dir);
            }
            println!("{}", report.to_db_bench_text());
            if let Some(d) = dump {
                println!("{d}");
            }
        } else {
            let env = HardwareEnv::builder()
                .cores(cores)
                .memory_gib(mem_gib)
                .device(device.clone())
                .build_sim();
            let db = open_engine(&opts, shards, &env, Arc::new(MemVfs::new()), &spec)?;
            eprintln!("running {name} on {} ...", env.description());
            let report = run_benchmark(&*db, &env, &spec, None)?;
            println!("{}", report.to_db_bench_text());
            if stats_dump {
                println!("{}", db.stats_text());
            }
        }
    }
    Ok(())
}
