//! `db_bench` — a CLI mirroring RocksDB's benchmarking tool, running
//! against the simulated `lsm-kvs` engine.
//!
//! ```text
//! db_bench --benchmarks fillrandom --num 1000000 --device nvme \
//!          --cores 4 --mem-gib 4 [--option name=value]...
//! ```

use std::sync::Arc;

use db_bench::{run_benchmark, BenchmarkSpec};
use hw_sim::{DeviceModel, HardwareEnv};
use lsm_kvs::options::Options;
use lsm_kvs::vfs::MemVfs;
use lsm_kvs::Db;

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("db_bench: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut benchmarks = vec!["fillrandom".to_string()];
    let mut num: Option<u64> = None;
    let mut device = DeviceModel::nvme_ssd();
    let mut cores = 4usize;
    let mut mem_gib = 8u64;
    let mut scale = 0.01f64;
    let mut opts = Options::default();
    let mut options_file: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]).into())
        };
        match args[i].as_str() {
            "--benchmarks" => benchmarks = take(&mut i)?.split(',').map(String::from).collect(),
            "--num" => num = Some(take(&mut i)?.parse()?),
            "--scale" => scale = take(&mut i)?.parse()?,
            "--cores" => cores = take(&mut i)?.parse()?,
            "--mem-gib" => mem_gib = take(&mut i)?.parse()?,
            "--device" => {
                device = match take(&mut i)?.as_str() {
                    "nvme" | "nvme_ssd" => DeviceModel::nvme_ssd(),
                    "sata_ssd" | "ssd" => DeviceModel::sata_ssd(),
                    "hdd" | "sata_hdd" => DeviceModel::sata_hdd(),
                    other => return Err(format!("unknown device: {other}").into()),
                }
            }
            "--option" => {
                let kv = take(&mut i)?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--option wants name=value, got {kv}"))?;
                opts.set_by_name(k, v)?;
            }
            "--options-file" => options_file = Some(take(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "usage: db_bench [--benchmarks list] [--num N | --scale F] [--cores N] \
                     [--mem-gib N] [--device nvme|ssd|hdd] [--option k=v]... [--options-file f]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }
    if let Some(path) = options_file {
        let text = std::fs::read_to_string(path)?;
        let outcome = lsm_kvs::options::ini::apply_ini(&mut opts, &text);
        for (k, v, why) in &outcome.rejected {
            eprintln!("options-file: ignored {k}={v}: {why}");
        }
    }

    for name in &benchmarks {
        let mut spec = match name.as_str() {
            "fillrandom" => BenchmarkSpec::fillrandom(scale),
            "readrandom" => BenchmarkSpec::readrandom(scale),
            "readrandomwriterandom" => BenchmarkSpec::readrandomwriterandom(scale),
            "mixgraph" => BenchmarkSpec::mixgraph(scale),
            other => return Err(format!("unknown benchmark: {other}").into()),
        };
        if let Some(n) = num {
            let ratio = n as f64 / spec.num_ops as f64;
            spec.num_ops = n;
            spec.key_space = ((spec.key_space as f64 * ratio) as u64).max(1_000);
            if spec.preload_keys > 0 {
                spec.preload_keys = ((spec.preload_keys as f64 * ratio) as u64).max(1_000);
            }
        }
        let env = HardwareEnv::builder()
            .cores(cores)
            .memory_gib(mem_gib)
            .device(device.clone())
            .build_sim();
        let db = Db::open(opts.clone(), &env, Arc::new(MemVfs::new()))?;
        eprintln!("running {name} on {} ...", env.description());
        let report = run_benchmark(&db, &env, &spec, None)?;
        println!("{}", report.to_db_bench_text());
    }
    Ok(())
}
