//! Benchmark specifications: the four workloads of the paper's §5.1.

use serde::{Deserialize, Serialize};

/// Key-popularity and value-size model parameters for `mixgraph`
/// (Cao et al., FAST '20: "Characterizing, Modeling, and Benchmarking
/// RocksDB Key-Value Workloads at Facebook").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixgraphConfig {
    /// Power-law exponent for key popularity (higher = hotter head).
    pub key_alpha: f64,
    /// Fraction of operations that are reads (paper: 0.5).
    pub read_fraction: f64,
    /// Pareto shape for value sizes.
    pub value_pareto_shape: f64,
    /// Minimum value size (Pareto scale).
    pub value_min: usize,
    /// Sine-wave QPS modulation amplitude as a fraction of mean (0 = off).
    pub qps_sine_amplitude: f64,
    /// Sine-wave period in simulated seconds.
    pub qps_sine_period_secs: f64,
}

impl Default for MixgraphConfig {
    fn default() -> Self {
        MixgraphConfig {
            key_alpha: 0.92,
            read_fraction: 0.5,
            value_pareto_shape: 2.0,
            value_min: 60,
            qps_sine_amplitude: 0.3,
            qps_sine_period_secs: 30.0,
        }
    }
}

/// Which workload to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Write `num_ops` KV pairs in random key order.
    FillRandom,
    /// Read `num_ops` random existing keys from a preloaded store.
    ReadRandom,
    /// Mixed random reads and writes (db_bench `readrandomwriterandom`).
    ReadRandomWriteRandom,
    /// The Facebook production model (50/50 by default).
    Mixgraph(MixgraphConfig),
    /// Batched random reads: like ReadRandom but keys are read through
    /// the engine's `multi_get`, this many at a time (db_bench
    /// `multireadrandom`). Newtype payload because the vendored serde
    /// derive does not handle struct variants.
    MultiReadRandom(usize),
}

impl WorkloadKind {
    /// The db_bench benchmark name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::FillRandom => "fillrandom",
            WorkloadKind::ReadRandom => "readrandom",
            WorkloadKind::ReadRandomWriteRandom => "readrandomwriterandom",
            WorkloadKind::Mixgraph(_) => "mixgraph",
            WorkloadKind::MultiReadRandom(_) => "multireadrandom",
        }
    }

    /// Short label used in the paper's tables (FR/RR/RRWR/Mixgraph).
    pub fn short_name(&self) -> &'static str {
        match self {
            WorkloadKind::FillRandom => "FR",
            WorkloadKind::ReadRandom => "RR",
            WorkloadKind::ReadRandomWriteRandom => "RRWR",
            WorkloadKind::Mixgraph(_) => "Mixgraph",
            WorkloadKind::MultiReadRandom(_) => "MRR",
        }
    }
}

/// A complete benchmark description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// The workload.
    pub workload: WorkloadKind,
    /// Total operations across all threads.
    pub num_ops: u64,
    /// Client threads (virtual timelines in simulation).
    pub num_threads: usize,
    /// Key size in bytes (db_bench default 16).
    pub key_size: usize,
    /// Value size in bytes (db_bench default 100).
    pub value_size: usize,
    /// Keys preloaded before the measured phase (readrandom: 25M).
    pub preload_keys: u64,
    /// Key space size for random draws (defaults to preload or num_ops).
    pub key_space: u64,
    /// Percent of mixed ops that are reads (db_bench default 90).
    pub read_percent: u32,
    /// Fraction of each value that is incompressible (db_bench's 0.5
    /// compression ratio).
    pub value_entropy: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Interval between monitor samples, in simulated milliseconds.
    pub report_interval_ms: u64,
}

impl BenchmarkSpec {
    /// Paper workload 1: write-intensive fillrandom (50M ops at scale 1.0).
    pub fn fillrandom(scale: f64) -> Self {
        let ops = scaled(50_000_000, scale);
        BenchmarkSpec {
            workload: WorkloadKind::FillRandom,
            num_ops: ops,
            num_threads: 1,
            key_size: 16,
            value_size: 100,
            preload_keys: 0,
            key_space: ops,
            read_percent: 0,
            value_entropy: 0.5,
            seed: 42,
            report_interval_ms: 1_000,
        }
    }

    /// Paper workload 2: read-intensive readrandom (10M reads over a 25M
    /// key preload at scale 1.0).
    pub fn readrandom(scale: f64) -> Self {
        let preload = scaled(25_000_000, scale);
        BenchmarkSpec {
            workload: WorkloadKind::ReadRandom,
            num_ops: scaled(10_000_000, scale),
            num_threads: 1,
            key_size: 16,
            value_size: 100,
            preload_keys: preload,
            key_space: preload,
            read_percent: 100,
            value_entropy: 0.5,
            seed: 42,
            report_interval_ms: 1_000,
        }
    }

    /// Paper workload 3: 25M mixed ops on 2 threads
    /// (readrandomwriterandom, db_bench default 90% reads). The store is
    /// preloaded so reads exercise the on-disk path, matching the paper's
    /// disk-bound mixed-read latencies.
    pub fn readrandomwriterandom(scale: f64) -> Self {
        let ops = scaled(25_000_000, scale);
        BenchmarkSpec {
            workload: WorkloadKind::ReadRandomWriteRandom,
            num_ops: ops,
            num_threads: 2,
            key_size: 16,
            value_size: 100,
            preload_keys: ops / 2,
            key_space: ops / 2,
            read_percent: 90,
            value_entropy: 0.5,
            seed: 42,
            report_interval_ms: 1_000,
        }
    }

    /// Paper workload 4: 25M mixgraph ops at 50% reads / 50% writes,
    /// over a preloaded store (reads must hit the disk path).
    pub fn mixgraph(scale: f64) -> Self {
        let ops = scaled(25_000_000, scale);
        BenchmarkSpec {
            workload: WorkloadKind::Mixgraph(MixgraphConfig::default()),
            num_ops: ops,
            num_threads: 1,
            key_size: 16,
            value_size: 100,
            preload_keys: ops / 2,
            key_space: ops / 2,
            read_percent: 50,
            value_entropy: 0.5,
            seed: 42,
            report_interval_ms: 1_000,
        }
    }

    /// Batched-read companion to readrandom: the same preloaded store
    /// and op count, but keys fetched `batch_size` at a time via
    /// `multi_get`. `num_ops` counts keys, not batches, so throughput
    /// is directly comparable with readrandom.
    pub fn multireadrandom(scale: f64, batch_size: usize) -> Self {
        BenchmarkSpec {
            workload: WorkloadKind::MultiReadRandom(batch_size.max(1)),
            ..Self::readrandom(scale)
        }
    }

    /// All four paper workloads at a common scale.
    pub fn paper_suite(scale: f64) -> Vec<BenchmarkSpec> {
        vec![
            Self::fillrandom(scale),
            Self::readrandom(scale),
            Self::readrandomwriterandom(scale),
            Self::mixgraph(scale),
        ]
    }

    /// Natural-language description of the workload, used in tuning
    /// prompts ("the user is only responsible for starting [ELMo-Tune]
    /// with an expected system workload").
    pub fn describe(&self) -> String {
        match &self.workload {
            WorkloadKind::FillRandom => format!(
                "write-intensive: insert {} key-value pairs ({}B keys, {}B values) in random key order",
                self.num_ops, self.key_size, self.value_size
            ),
            WorkloadKind::ReadRandom => format!(
                "read-intensive: {} random point reads over a database preloaded with {} keys",
                self.num_ops, self.preload_keys
            ),
            WorkloadKind::ReadRandomWriteRandom => format!(
                "mixed: {} operations on {} threads, {}% random reads / {}% random writes",
                self.num_ops,
                self.num_threads,
                self.read_percent,
                100 - self.read_percent
            ),
            WorkloadKind::Mixgraph(cfg) => format!(
                "production-like (mixgraph): {} operations, {:.0}% reads / {:.0}% writes, skewed key popularity (alpha={}), Pareto value sizes",
                self.num_ops,
                cfg.read_fraction * 100.0,
                (1.0 - cfg.read_fraction) * 100.0,
                cfg.key_alpha
            ),
            WorkloadKind::MultiReadRandom(batch_size) => format!(
                "batched read-intensive: {} random point reads issued {} at a time via multi_get over a database preloaded with {} keys",
                self.num_ops, batch_size, self.preload_keys
            ),
        }
    }
}

fn scaled(base: u64, scale: f64) -> u64 {
    ((base as f64 * scale).round() as u64).max(1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_matches_paper_parameters() {
        let suite = BenchmarkSpec::paper_suite(1.0);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].num_ops, 50_000_000);
        assert_eq!(suite[1].num_ops, 10_000_000);
        assert_eq!(suite[1].preload_keys, 25_000_000);
        assert_eq!(suite[2].num_ops, 25_000_000);
        assert_eq!(suite[2].num_threads, 2);
        assert_eq!(suite[3].num_ops, 25_000_000);
    }

    #[test]
    fn scaling_shrinks_op_counts_proportionally() {
        let fr = BenchmarkSpec::fillrandom(0.01);
        assert_eq!(fr.num_ops, 500_000);
        let rr = BenchmarkSpec::readrandom(0.01);
        assert_eq!(rr.preload_keys, 250_000);
        assert_eq!(rr.num_ops, 100_000);
    }

    #[test]
    fn scale_never_goes_below_floor() {
        let fr = BenchmarkSpec::fillrandom(1e-9);
        assert_eq!(fr.num_ops, 1_000);
    }

    #[test]
    fn names_match_db_bench() {
        assert_eq!(BenchmarkSpec::fillrandom(1.0).workload.name(), "fillrandom");
        assert_eq!(BenchmarkSpec::readrandom(1.0).workload.short_name(), "RR");
        assert_eq!(
            BenchmarkSpec::readrandomwriterandom(1.0).workload.name(),
            "readrandomwriterandom"
        );
        assert_eq!(BenchmarkSpec::mixgraph(1.0).workload.short_name(), "Mixgraph");
    }

    #[test]
    fn multireadrandom_mirrors_readrandom() {
        let mrr = BenchmarkSpec::multireadrandom(0.01, 32);
        let rr = BenchmarkSpec::readrandom(0.01);
        assert_eq!(mrr.num_ops, rr.num_ops);
        assert_eq!(mrr.preload_keys, rr.preload_keys);
        assert_eq!(mrr.workload.name(), "multireadrandom");
        assert_eq!(mrr.workload.short_name(), "MRR");
        assert!(mrr.describe().contains("multi_get"));
        assert_eq!(
            BenchmarkSpec::multireadrandom(0.01, 0).workload,
            WorkloadKind::MultiReadRandom(1),
            "batch size clamps to at least one key"
        );
    }

    #[test]
    fn descriptions_mention_key_facts() {
        assert!(BenchmarkSpec::fillrandom(1.0).describe().contains("write-intensive"));
        assert!(BenchmarkSpec::readrandom(1.0).describe().contains("preloaded"));
        assert!(BenchmarkSpec::mixgraph(1.0).describe().contains("mixgraph"));
    }
}
