//! End-to-end tuning-loop integration tests spanning all crates.

use elmo::db_bench::BenchmarkSpec;
use elmo::elmo_tune::{Decision, EnvSpec, TuningConfig, TuningSession};
use elmo::hw_sim::DeviceModel;
use elmo::llm_client::{ExpertModel, QuirkConfig, ScriptedModel};
use elmo::lsm_kvs::options::Options;

fn quick_fr() -> BenchmarkSpec {
    // Large enough that the default 64 MiB write buffer flushes and
    // compactions run — otherwise there is nothing for tuning to improve.
    let mut s = BenchmarkSpec::fillrandom(1.0);
    s.num_ops = 700_000;
    s.key_space = 700_000;
    s.report_interval_ms = 100;
    s
}

fn quick_mix() -> BenchmarkSpec {
    // The preload must exceed the default 8 MiB block cache so the read
    // side is device-bound and cache/bloom tuning has something to win.
    let mut s = BenchmarkSpec::mixgraph(1.0);
    s.num_ops = 100_000;
    s.preload_keys = 250_000;
    s.key_space = 250_000;
    s.report_interval_ms = 100;
    s
}

fn hdd() -> EnvSpec {
    EnvSpec {
        cores: 2,
        mem_gib: 4,
        device: DeviceModel::sata_hdd(),
    }
}

fn nvme() -> EnvSpec {
    EnvSpec {
        cores: 4,
        mem_gib: 4,
        device: DeviceModel::nvme_ssd(),
    }
}

#[test]
fn tuning_improves_write_heavy_on_hdd() {
    let mut model = ExpertModel::new(42, QuirkConfig::default());
    let report = TuningSession::new(hdd(), quick_fr(), &mut model)
        .with_config(TuningConfig {
            iterations: 5,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs");
    assert_eq!(report.records.len(), 5);
    assert!(
        report.throughput_improvement() > 1.02,
        "expected a real win on HDD write-heavy, got {:.3}x",
        report.throughput_improvement()
    );
    // The tuned configuration must validate and differ from defaults.
    report.final_options.validate().unwrap();
    assert!(!Options::default().diff(&report.final_options).is_empty());
}

#[test]
fn tuning_improves_mixed_workload_on_nvme() {
    let mut model = ExpertModel::well_behaved(42);
    let report = TuningSession::new(nvme(), quick_mix(), &mut model)
        .with_config(TuningConfig {
            iterations: 4,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs");
    assert!(
        report.throughput_improvement() >= 1.0,
        "never worse than default: {:.3}x",
        report.throughput_improvement()
    );
    // Mixed workloads should pick up read-side tuning (bloom/cache).
    let diff = Options::default().diff(&report.final_options);
    let changed: Vec<&str> = diff.iter().map(|(n, _, _)| n.as_str()).collect();
    assert!(
        changed.contains(&"bloom_filter_bits_per_key") || changed.contains(&"block_cache_size"),
        "read-side option expected in {changed:?}"
    );
}

#[test]
fn sessions_are_deterministic() {
    let run = || {
        let mut model = ExpertModel::new(7, QuirkConfig::default());
        TuningSession::new(hdd(), quick_fr(), &mut model)
            .with_config(TuningConfig {
                iterations: 3,
                ..TuningConfig::default()
            })
            .run(Options::default())
            .expect("session runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.baseline.ops_per_sec, b.baseline.ops_per_sec);
    assert_eq!(a.best.ops_per_sec, b.best.ops_per_sec);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.decision, rb.decision);
        assert_eq!(ra.applied, rb.applied);
        assert_eq!(ra.metrics.ops_per_sec, rb.metrics.ops_per_sec);
    }
}

#[test]
fn safeguards_hold_under_heavy_hallucination() {
    let mut model = ExpertModel::new(13, QuirkConfig::heavy());
    let report = TuningSession::new(hdd(), quick_fr(), &mut model)
        .with_config(TuningConfig {
            iterations: 5,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session survives a misbehaving model");
    // Whatever the model hallucinated, the surviving configuration is
    // valid and the protected options are untouched.
    report.final_options.validate().unwrap();
    assert!(!report.final_options.disable_wal);
    assert!(!report.final_options.avoid_flush_during_shutdown);
    // And the safeguards did have to work for a living.
    let total_violations: usize = report.records.iter().map(|r| r.violations.len()).sum();
    assert!(total_violations > 0, "heavy quirks must trigger safeguards");
}

#[test]
fn flagger_reverts_a_poisoned_iteration_then_recovers() {
    // Iteration 1 poisons the config; iteration 2 proposes a sane change.
    let mut model = ScriptedModel::new(vec![
        "```ini\nwrite_buffer_size=64KB\nlevel0_slowdown_writes_trigger=2\nlevel0_stop_writes_trigger=3\nmax_background_jobs=1\n```".to_string(),
        "```ini\nmax_background_jobs=4\nbytes_per_sync=1MB\n```".to_string(),
    ]);
    let report = TuningSession::new(hdd(), quick_fr(), &mut model)
        .with_config(TuningConfig {
            iterations: 2,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs");
    let first = &report.records[0];
    assert!(
        matches!(first.decision, Decision::Reverted | Decision::AbortedEarly),
        "poison must be rejected: {:?}",
        first.decision
    );
    // After the reverted iteration the session continues from defaults.
    assert_eq!(
        report.records[1].options_after.write_buffer_size,
        report.final_options.write_buffer_size
    );
    assert!(!report.final_options.disable_wal);
    assert_ne!(report.final_options.write_buffer_size, 64 << 10);
}

#[test]
fn stagnation_stop_cuts_the_session_short() {
    // A model that always proposes the same no-op-ish bad change.
    let mut model = ScriptedModel::new(vec![
        "```ini\nwrite_buffer_size=128KB\n```".to_string();
        7
    ]);
    let report = TuningSession::new(hdd(), quick_fr(), &mut model)
        .with_config(TuningConfig {
            iterations: 7,
            stop_on_stagnation: Some(2),
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs");
    assert!(
        report.records.len() < 7,
        "stagnation should stop early, ran {}",
        report.records.len()
    );
}

#[test]
fn p99_objective_session_runs() {
    use elmo::elmo_tune::Objective;
    let mut model = ExpertModel::well_behaved(5);
    let report = TuningSession::new(hdd(), quick_fr(), &mut model)
        .with_config(TuningConfig {
            iterations: 3,
            objective: Objective::P99Latency,
            ..TuningConfig::default()
        })
        .run(Options::default())
        .expect("session runs");
    let base = report.baseline.p99_write_us.unwrap_or(f64::MAX);
    let best = report.best.p99_write_us.unwrap_or(f64::MAX);
    assert!(best <= base * 1.001, "p99 objective never keeps a worse tail: {base} -> {best}");
}
