//! Crash-recovery and isolation integration tests for the storage engine.

use std::sync::Arc;

use elmo::hw_sim::{DeviceModel, HardwareEnv};
use elmo::lsm_kvs::options::Options;
use elmo::lsm_kvs::vfs::MemVfs;
use elmo::lsm_kvs::{Db, Ticker, WriteBatch};

fn env() -> HardwareEnv {
    HardwareEnv::builder()
        .cores(4)
        .memory_gib(8)
        .device(DeviceModel::nvme_ssd())
        .build_sim()
}

fn churn_opts() -> Options {
    Options {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        ..Options::default()
    }
}

#[test]
fn recovery_after_heavy_churn_preserves_everything() {
    let env = env();
    let vfs = Arc::new(MemVfs::new());
    let n: usize = 5_000;
    {
        let db = Db::builder(churn_opts()).env(&env).vfs(vfs.clone()).open().unwrap();
        for round in 0..3u32 {
            for i in 0..n {
                db.put(
                    format!("key-{i:06}").as_bytes(),
                    format!("round-{round}-value-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        // Delete a slice of keys, overwrite another.
        for i in (0..n).step_by(10) {
            db.delete(format!("key-{i:06}").as_bytes()).unwrap();
        }
        let stats = db.stats();
        assert!(stats.tickers.get(Ticker::FlushJobs) > 3, "tree churned");
        assert!(stats.tickers.get(Ticker::CompactionJobs) > 0);
        // Crash: drop without any explicit flush/close.
    }
    let db = Db::builder(churn_opts()).env(&env).vfs(vfs).open().unwrap();
    for i in 0..n {
        let key = format!("key-{i:06}");
        let got = db.get(key.as_bytes()).unwrap();
        if i % 10 == 0 {
            assert_eq!(got, None, "{key} was deleted");
        } else {
            assert_eq!(
                got,
                Some(format!("round-2-value-{i}").into_bytes()),
                "{key} must hold the last round's value"
            );
        }
    }
}

#[test]
fn recovery_is_idempotent_across_multiple_reopens() {
    let env = env();
    let vfs = Arc::new(MemVfs::new());
    {
        let db = Db::builder(Options::default()).env(&env).vfs(vfs.clone()).open().unwrap();
        let mut batch = WriteBatch::new();
        for i in 0..100 {
            batch.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes());
        }
        db.write(batch).unwrap();
    }
    for _ in 0..3 {
        let db = Db::builder(Options::default()).env(&env).vfs(vfs.clone()).open().unwrap();
        assert_eq!(db.get(b"k42").unwrap(), Some(b"v42".to_vec()));
        assert_eq!(db.get(b"k99").unwrap(), Some(b"v99".to_vec()));
    }
}

#[test]
fn reopening_with_different_options_keeps_data() {
    let env = env();
    let vfs = Arc::new(MemVfs::new());
    {
        let db = Db::builder(churn_opts()).env(&env).vfs(vfs.clone()).open().unwrap();
        for i in 0..2_000 {
            db.put(format!("key-{i:05}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
    }
    // Reopen with a tuned configuration (what a tuning iteration does).
    let mut tuned = Options::default();
    tuned.set_by_name("bloom_filter_bits_per_key", "10").unwrap();
    tuned.set_by_name("block_cache_size", "64MB").unwrap();
    tuned.set_by_name("compaction_readahead_size", "4MB").unwrap();
    let db = Db::builder(tuned).env(&env).vfs(vfs).open().unwrap();
    for i in (0..2_000).step_by(37) {
        assert_eq!(db.get(format!("key-{i:05}").as_bytes()).unwrap(), Some(b"v".to_vec()));
    }
    let scan = db.scan(b"key-00100", 5).unwrap();
    assert_eq!(scan.len(), 5);
    assert_eq!(scan[0].0, b"key-00100".to_vec());
}

#[test]
fn forked_stores_are_isolated() {
    let env = env();
    let base = MemVfs::new();
    {
        let db = Db::builder(Options::default()).env(&env).vfs(Arc::new(base.clone())).open().unwrap();
        for i in 0..500 {
            db.put(format!("shared-{i}").as_bytes(), b"base").unwrap();
        }
    }
    let fork_a = base.fork();
    let fork_b = base.fork();

    let db_a = Db::builder(Options::default()).env(&env).vfs(Arc::new(fork_a)).open().unwrap();
    db_a.put(b"only-in-a", b"1").unwrap();
    db_a.put(b"shared-0", b"overwritten-in-a").unwrap();

    let db_b = Db::builder(Options::default()).env(&env).vfs(Arc::new(fork_b)).open().unwrap();
    assert_eq!(db_b.get(b"only-in-a").unwrap(), None, "fork B never sees A's writes");
    assert_eq!(db_b.get(b"shared-0").unwrap(), Some(b"base".to_vec()));
    assert_eq!(db_a.get(b"shared-0").unwrap(), Some(b"overwritten-in-a".to_vec()));
}

#[test]
fn std_vfs_end_to_end_on_real_files() {
    let dir = std::env::temp_dir().join(format!("lsmkvs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let vfs = Arc::new(elmo::lsm_kvs::vfs::StdVfs::new(&dir).unwrap());
    let env = env();
    {
        let db = Db::builder(churn_opts()).env(&env).vfs(vfs.clone()).open().unwrap();
        for i in 0..3_000 {
            db.put(format!("key-{i:05}").as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
    }
    // Recover from the real directory.
    let db = Db::builder(churn_opts()).env(&env).vfs(vfs).open().unwrap();
    for i in (0..3_000).step_by(113) {
        assert_eq!(
            db.get(format!("key-{i:05}").as_bytes()).unwrap(),
            Some(format!("val-{i}").into_bytes())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_styles_all_serve_reads() {
    for style in ["level", "universal", "fifo"] {
        let env = env();
        let mut opts = churn_opts();
        opts.set_by_name("compaction_style", style).unwrap();
        if style == "fifo" {
            // FIFO drops old data once over budget; keep the budget large
            // enough that nothing is dropped in this test.
            opts.set_by_name("fifo_max_table_files_size", "1GB").unwrap();
        }
        let db = Db::builder(opts).env(&env).open().unwrap();
        for i in 0..4_000 {
            db.put(format!("key-{i:05}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        db.wait_background_idle().unwrap();
        for i in (0..4_000).step_by(197) {
            assert_eq!(
                db.get(format!("key-{i:05}").as_bytes()).unwrap(),
                Some(b"v".to_vec()),
                "style={style} key-{i}"
            );
        }
    }
}

#[test]
fn fifo_actually_drops_old_data_over_budget() {
    let env = env();
    let mut opts = churn_opts();
    opts.set_by_name("compaction_style", "fifo").unwrap();
    opts.set_by_name("fifo_max_table_files_size", "1MB").unwrap();
    // Zero-filled values would compress below the FIFO budget; disable
    // compression so the budget is actually exceeded.
    opts.set_by_name("compression", "none").unwrap();
    let db = Db::builder(opts).env(&env).open().unwrap();
    for i in 0..30_000 {
        db.put(format!("key-{i:06}").as_bytes(), &[0u8; 100]).unwrap();
    }
    db.flush().unwrap();
    db.wait_background_idle().unwrap();
    let stats = db.stats();
    assert!(stats.tickers.get(Ticker::FilesDeleted) > 0, "FIFO must drop files");
    // Early keys are likely gone; the newest keys must survive.
    assert_eq!(
        db.get(b"key-029999").unwrap(),
        Some(vec![0u8; 100]),
        "newest data survives FIFO"
    );
}
