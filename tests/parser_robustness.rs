//! Robustness tests: the evaluator + safeguards must absorb anything the
//! (simulated) LLM emits without panicking or producing invalid configs.

use elmo::elmo_tune::{evaluate_response, vet, SafeguardPolicy};
use elmo::llm_client::{ChatRequest, ExpertModel, LanguageModel, QuirkConfig};
use elmo::lsm_kvs::options::Options;

fn prompt(iteration: u64, workload: &str, device: &str, cores: u64, mem: u64) -> String {
    format!(
        "CPU: {cores} logical cores\nMemory: {mem}.00 GiB total\nStorage: {device}\n\
         Workload: {workload}\nThis is iteration {iteration}.\n\
         [DBOptions]\n  max_background_jobs=2\n[CFOptions \"default\"]\n  write_buffer_size=67108864\n\
         Change at most 10 options."
    )
}

#[test]
fn every_expert_output_across_the_grid_is_handled() {
    let policy = SafeguardPolicy::with_memory_budget(4 << 30);
    let base = Options::default();
    let mut responses = 0;
    let mut applied_total = 0;
    for seed in [1u64, 7, 42] {
        for quirks in [QuirkConfig::none(), QuirkConfig::default(), QuirkConfig::heavy()] {
            for workload in ["write-intensive fillrandom", "read-intensive point reads", "mixgraph production"] {
                for device in ["SATA HDD (rotational: yes)", "NVMe SSD"] {
                    for iteration in 1..=8 {
                        let mut model = ExpertModel::new(seed, quirks.clone());
                        let p = prompt(iteration, workload, device, 2, 4);
                        let reply = model
                            .complete(&ChatRequest::single_turn("gpt-4", &p))
                            .expect("expert always answers");
                        let eval = evaluate_response(&reply.content);
                        assert!(!eval.unparseable, "expert output must parse: {}", reply.content);
                        let outcome = vet(&base, &eval.changes, &policy);
                        outcome
                            .options
                            .validate()
                            .expect("vetted configuration always validates");
                        assert!(!outcome.options.disable_wal);
                        responses += 1;
                        applied_total += outcome.applied.len();
                    }
                }
            }
        }
    }
    assert_eq!(responses, 3 * 3 * 3 * 2 * 8);
    assert!(applied_total > responses, "on average more than one change applies");
}

#[test]
fn adversarial_response_soup_never_panics() {
    let policy = SafeguardPolicy::default();
    let base = Options::default();
    let nasty = [
        "",
        "```",
        "``` ```",
        "```\n```",
        "~~~ini\nwrite_buffer_size=",
        "=====",
        "write_buffer_size==64MB",
        "```\n= = =\n[weird\nwrite_buffer_size=64MB extra words here\n```",
        "set  to 4",
        "set write_buffer_size to",
        "πρόβλημα=δεν υπάρχει",
        "🚀🚀🚀 set block_cache_size to 🚀",
        "```ini\n\u{0}binary\u{1}=\u{2}\n```",
        "A very long line ".repeat(10_000).as_str(),
        "```ini\nmax_background_jobs=4\n", // unterminated fence
    ]
    .map(String::from);
    for text in &nasty {
        let eval = evaluate_response(text);
        let outcome = vet(&base, &eval.changes, &policy);
        outcome.options.validate().expect("never leaves options invalid");
    }
    // The unterminated fence still yields its content.
    let eval = evaluate_response("```ini\nmax_background_jobs=4\n");
    assert_eq!(eval.changes.len(), 1);
}

#[test]
fn prose_only_responses_still_apply() {
    let base = Options::default();
    let policy = SafeguardPolicy::default();
    let text = "I looked at your workload. First, set write_buffer_size to 128MB. \
                Then I would raise max_background_jobs to 6 and lower \
                level0_slowdown_writes_trigger to 12.";
    let eval = evaluate_response(text);
    assert_eq!(eval.changes.len(), 3, "{:?}", eval.changes);
    let outcome = vet(&base, &eval.changes, &policy);
    assert_eq!(outcome.options.write_buffer_size, 128 << 20);
    assert_eq!(outcome.options.max_background_jobs, 6);
    assert_eq!(outcome.options.level0_slowdown_writes_trigger, 12);
}

#[test]
fn vet_is_stable_under_repeated_application() {
    // Applying the same response twice must be a fixpoint (idempotent).
    let policy = SafeguardPolicy::default();
    let base = Options::default();
    let text = "```ini\nwrite_buffer_size=32MB\nbloom_filter_bits_per_key=10\n```";
    let eval = evaluate_response(text);
    let once = vet(&base, &eval.changes, &policy);
    let twice = vet(&once.options, &eval.changes, &policy);
    assert_eq!(once.options, twice.options);
    assert!(twice.applied.is_empty(), "second application changes nothing");
}
