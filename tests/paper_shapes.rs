//! Directional "shape" tests: the qualitative relationships the paper's
//! evaluation depends on must hold in the simulated substrate.

use elmo::db_bench::{run_benchmark, BenchmarkSpec};
use elmo::hw_sim::{DeviceModel, HardwareEnv};
use elmo::lsm_kvs::options::Options;
use elmo::lsm_kvs::Db;

fn env(cores: usize, gib: u64, device: DeviceModel) -> HardwareEnv {
    HardwareEnv::builder().cores(cores).memory_gib(gib).device(device).build_sim()
}

fn run(spec: &BenchmarkSpec, opts: Options, cores: usize, gib: u64, device: DeviceModel) -> elmo::db_bench::BenchReport {
    let env = env(cores, gib, device);
    let db = Db::builder(opts).env(&env).vfs(std::sync::Arc::new(elmo::lsm_kvs::vfs::MemVfs::new())).open().unwrap();
    run_benchmark(&db, &env, spec, None).unwrap()
}

fn small(mut spec: BenchmarkSpec, ops: u64) -> BenchmarkSpec {
    spec.num_ops = ops;
    if spec.preload_keys > 0 {
        spec.preload_keys = ops;
    }
    spec.key_space = ops.max(1000);
    spec
}

#[test]
fn readrandom_default_is_device_bound_and_bloom_cache_help() {
    // The preload (~18 MB) must exceed the default 8 MiB block cache so
    // the default read path actually hits the device.
    let mut spec = small(BenchmarkSpec::readrandom(1.0), 20_000);
    spec.preload_keys = 150_000;
    spec.key_space = 150_000;

    let default = run(&spec, Options::default(), 4, 4, DeviceModel::nvme_ssd());

    let mut tuned = Options::default();
    tuned.set_by_name("bloom_filter_bits_per_key", "10").unwrap();
    tuned.set_by_name("block_cache_size", "512MB").unwrap();
    let tuned_report = run(&spec, tuned, 4, 4, DeviceModel::nvme_ssd());

    assert!(
        tuned_report.ops_per_sec > default.ops_per_sec * 1.3,
        "read tuning must clearly win: {} vs {}",
        tuned_report.ops_per_sec,
        default.ops_per_sec
    );
    // A cold cache still leaves the p99 read device-bound (one block
    // fetch) in both configurations; it must at least not get worse.
    assert!(
        tuned_report.p99_read_micros() <= default.p99_read_micros(),
        "p99 read must not regress: {} vs {}",
        tuned_report.p99_read_micros(),
        default.p99_read_micros()
    );
    // The mean, however, must improve: bloom filters skip the L0 probes.
    assert!(tuned_report.micros_per_op < default.micros_per_op);
}

#[test]
fn hdd_suffers_more_than_nvme_on_the_same_mixed_workload() {
    let spec = small(BenchmarkSpec::mixgraph(1.0), 15_000);
    let nvme = run(&spec, Options::default(), 4, 4, DeviceModel::nvme_ssd());
    let hdd = run(&spec, Options::default(), 4, 4, DeviceModel::sata_hdd());
    assert!(
        nvme.ops_per_sec > hdd.ops_per_sec,
        "NVMe must beat HDD: {} vs {}",
        nvme.ops_per_sec,
        hdd.ops_per_sec
    );
    assert!(nvme.p99_read_micros() < hdd.p99_read_micros());
}

#[test]
fn compaction_readahead_helps_hdd_writes() {
    let spec = small(BenchmarkSpec::fillrandom(1.0), 120_000);
    let small_ra = Options {
        write_buffer_size: 1 << 20, // force frequent flush/compaction
        target_file_size_base: 1 << 20,
        max_bytes_for_level_base: 4 << 20,
        compaction_readahead_size: 128 << 10,
        ..Options::default()
    };
    let mut big_ra = small_ra.clone();
    big_ra.compaction_readahead_size = 8 << 20;

    let small_report = run(&spec, small_ra, 2, 4, DeviceModel::sata_hdd());
    let big_report = run(&spec, big_ra, 2, 4, DeviceModel::sata_hdd());
    assert!(
        big_report.ops_per_sec > small_report.ops_per_sec,
        "bigger readahead should help on HDD: {} vs {}",
        big_report.ops_per_sec,
        small_report.ops_per_sec
    );
}

#[test]
fn more_write_buffers_absorb_bursts() {
    let spec = small(BenchmarkSpec::fillrandom(1.0), 120_000);
    let tight = Options {
        write_buffer_size: 1 << 20,
        target_file_size_base: 1 << 20,
        max_bytes_for_level_base: 4 << 20,
        max_write_buffer_number: 2,
        ..Options::default()
    };
    let mut roomy = tight.clone();
    roomy.max_write_buffer_number = 6;
    roomy.min_write_buffer_number_to_merge = 2;

    let tight_report = run(&spec, tight, 2, 4, DeviceModel::sata_hdd());
    let roomy_report = run(&spec, roomy, 2, 4, DeviceModel::sata_hdd());
    assert!(
        roomy_report.stall_seconds() <= tight_report.stall_seconds(),
        "extra buffers reduce stalls: {} vs {}",
        roomy_report.stall_seconds(),
        tight_report.stall_seconds()
    );
}

#[test]
fn fewer_cores_slow_background_heavy_workloads() {
    let spec = small(BenchmarkSpec::fillrandom(1.0), 150_000);
    let opts = Options {
        write_buffer_size: 1 << 20,
        target_file_size_base: 1 << 20,
        max_bytes_for_level_base: 4 << 20,
        max_background_jobs: 8,
        ..Options::default()
    };
    let two = run(&spec, opts.clone(), 2, 8, DeviceModel::nvme_ssd());
    let eight = run(&spec, opts, 8, 8, DeviceModel::nvme_ssd());
    assert!(
        eight.ops_per_sec >= two.ops_per_sec,
        "more cores never hurt: {} vs {}",
        eight.ops_per_sec,
        two.ops_per_sec
    );
}

#[test]
fn memory_overcommit_thrashes() {
    let spec = small(BenchmarkSpec::fillrandom(1.0), 40_000);
    let sane = Options::default();
    // Cache + buffers far beyond a 1 GiB budget.
    let greedy = Options {
        block_cache_size: 3 << 30,
        write_buffer_size: 512 << 20,
        max_write_buffer_number: 8,
        ..Options::default()
    };

    let sane_report = run(&spec, sane, 4, 1, DeviceModel::nvme_ssd());
    // The greedy config reserves cache memory only as blocks arrive, so
    // drive some reads through it too.
    let mut greedy_spec = small(BenchmarkSpec::mixgraph(1.0), 40_000);
    greedy_spec.preload_keys = 40_000;
    let greedy_report = run(&greedy_spec, greedy, 4, 1, DeviceModel::nvme_ssd());
    // No strict ordering claim across different workloads; the key shape:
    // both still complete, and the simulator applied memory pressure.
    assert!(sane_report.ops_per_sec > 0.0);
    assert!(greedy_report.ops_per_sec > 0.0);
}

#[test]
fn compression_trades_cpu_for_io() {
    let spec = small(BenchmarkSpec::fillrandom(1.0), 100_000);
    let mut none = Options {
        write_buffer_size: 1 << 20,
        target_file_size_base: 1 << 20,
        max_bytes_for_level_base: 4 << 20,
        ..Options::default()
    };
    none.set_by_name("compression", "none").unwrap();
    let mut zstd = none.clone();
    zstd.set_by_name("compression", "zstd").unwrap();

    let none_report = run(&spec, none, 2, 4, DeviceModel::sata_hdd());
    let zstd_report = run(&spec, zstd, 2, 4, DeviceModel::sata_hdd());
    // On a slow HDD with compressible data, compression reduces bytes
    // written (write amp) even if throughput is similar.
    let none_bytes = none_report.tickers.get(elmo::lsm_kvs::Ticker::FlushBytesWritten)
        + none_report.tickers.get(elmo::lsm_kvs::Ticker::CompactionBytesWritten);
    let zstd_bytes = zstd_report.tickers.get(elmo::lsm_kvs::Ticker::FlushBytesWritten)
        + zstd_report.tickers.get(elmo::lsm_kvs::Ticker::CompactionBytesWritten);
    assert!(
        zstd_bytes < none_bytes,
        "compression must reduce physical writes: {zstd_bytes} vs {none_bytes}"
    );
}
