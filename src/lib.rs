//! # elmo — umbrella crate for the ELMo-Tune reproduction
//!
//! Re-exports the whole stack so examples and integration tests can depend
//! on a single crate:
//!
//! - [`hw_sim`] — virtual-clock hardware simulation (devices, CPU, memory)
//! - [`lsm_kvs`] — the LSM-tree key-value store with a RocksDB-compatible
//!   option surface
//! - [`db_bench`] — workload generators and the benchmark runner
//! - [`llm_client`] — language-model abstraction and the rule-based GPT-4
//!   tuning-expert simulator
//! - [`elmo_tune`] — the tuning framework itself (prompt generation, option
//!   evaluation, active flagging, safeguards, feedback loop)
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use db_bench;
pub use elmo_tune;
pub use hw_sim;
pub use llm_client;
pub use lsm_kvs;
