//! Running the Facebook-style `mixgraph` workload directly.
//!
//! Demonstrates the `db-bench` crate as a standalone benchmarking tool:
//! preload, run the skewed production model, and print the db_bench-style
//! report — the exact text the tuning framework's Benchmark Parser reads.
//!
//! ```text
//! cargo run --release --example mixgraph_workload
//! ```

use elmo::db_bench::{run_benchmark, BenchmarkSpec, MonitorControl};
use elmo::hw_sim::{DeviceModel, HardwareEnv};
use elmo::lsm_kvs::{options::Options, Db};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = HardwareEnv::builder()
        .cores(4)
        .memory_gib(4)
        .device(DeviceModel::nvme_ssd())
        .build_sim();
    let db = Db::builder(Options::default()).env(&env).open()?;

    // 1% of the paper's 25M mixgraph ops (50% reads / 50% writes,
    // power-law key popularity, Pareto value sizes, sine QPS).
    let spec = BenchmarkSpec::mixgraph(0.01);
    println!("workload: {}\n", spec.describe());

    // Stream monitor samples like the framework's benchmark monitor does.
    let mut cb = |s: &elmo::db_bench::MonitorSample| {
        println!(
            "  t={:6.1}s  {:>9.0} ops/s  cpu {:4.1}%  mem {:4.1}%",
            s.at_secs,
            s.interval_ops_per_sec,
            s.cpu_util_percent,
            s.mem_pressure * 100.0
        );
        MonitorControl::Continue
    };
    let report = run_benchmark(&db, &env, &spec, Some(&mut cb))?;

    println!("\n{}", report.to_db_bench_text());
    println!(
        "cache hit ratio {:.1}%, stalls {:.3}s",
        report.cache_hit_ratio() * 100.0,
        report.stall_seconds()
    );
    Ok(())
}
