//! Quickstart: open a store, read and write, then let the LLM tune it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use elmo::db_bench::BenchmarkSpec;
use elmo::elmo_tune::{EnvSpec, TuningConfig, TuningSession};
use elmo::hw_sim::{DeviceModel, HardwareEnv};
use elmo::llm_client::ExpertModel;
use elmo::lsm_kvs::{options::Options, Db};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. The store as a library: a simulated 4-core/8-GiB NVMe box.
    // ---------------------------------------------------------------
    let env = HardwareEnv::builder()
        .cores(4)
        .memory_gib(8)
        .device(DeviceModel::nvme_ssd())
        .build_sim();
    let db = Db::builder(Options::default()).env(&env).open()?;

    db.put(b"user:1001", b"alice")?;
    db.put(b"user:1002", b"bob")?;
    db.put(b"user:1003", b"carol")?;
    db.delete(b"user:1002")?;

    println!("get user:1001 -> {:?}", String::from_utf8(db.get(b"user:1001")?.unwrap())?);
    println!("get user:1002 -> {:?} (deleted)", db.get(b"user:1002")?);

    let scan = db.scan(b"user:", 10)?;
    println!("scan from 'user:' found {} live keys", scan.len());
    for (k, v) in &scan {
        println!("  {} = {}", String::from_utf8_lossy(k), String::from_utf8_lossy(v));
    }

    let stats = db.stats();
    println!(
        "\nengine stats: {} keys written, memtable {} bytes, virtual time {}",
        stats.last_sequence,
        stats.memtable_bytes,
        env.clock().now(),
    );

    // ---------------------------------------------------------------
    // 2. Tuning: two iterations of the ELMo-Tune loop with the
    //    simulated GPT-4 expert, on a small write-heavy workload.
    // ---------------------------------------------------------------
    let mut model = ExpertModel::well_behaved(42);
    let mut spec = BenchmarkSpec::fillrandom(1.0);
    spec.num_ops = 100_000; // keep the example quick
    spec.key_space = 100_000;

    let env_spec = EnvSpec {
        cores: 4,
        mem_gib: 8,
        device: DeviceModel::nvme_ssd(),
    };
    let report = TuningSession::new(env_spec, spec, &mut model)
        .with_config(TuningConfig {
            iterations: 2,
            ..TuningConfig::default()
        })
        .run(Options::default())?;

    println!("\n--- tuning session ({}) ---", report.environment);
    println!("{}", report.iteration_series_text());
    println!(
        "default {:.0} ops/s -> tuned {:.0} ops/s ({:.2}x)",
        report.baseline.ops_per_sec,
        report.best.ops_per_sec,
        report.throughput_improvement()
    );
    Ok(())
}
