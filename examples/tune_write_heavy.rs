//! Write-heavy tuning on a slow disk: the paper's Table-5 scenario.
//!
//! Runs a full 7-iteration ELMo-Tune session for `fillrandom` on a
//! simulated 2-core / 4-GiB / SATA-HDD box and prints the per-iteration
//! performance series plus the option-change trajectory (the shape of
//! the paper's Figure 3 and Table 5).
//!
//! ```text
//! cargo run --release --example tune_write_heavy
//! ```

use elmo::db_bench::BenchmarkSpec;
use elmo::elmo_tune::{EnvSpec, TuningConfig, TuningSession};
use elmo::hw_sim::DeviceModel;
use elmo::llm_client::{ExpertModel, QuirkConfig};
use elmo::lsm_kvs::options::Options;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env_spec = EnvSpec {
        cores: 2,
        mem_gib: 4,
        device: DeviceModel::sata_hdd(),
    };
    // 1% of the paper's 50M fillrandom ops keeps the example snappy.
    let spec = BenchmarkSpec::fillrandom(0.01);

    // The default quirk profile includes the classic unsafe suggestion
    // (disable_wal) at iteration 2, so the safeguard output is visible.
    let mut model = ExpertModel::new(42, QuirkConfig::default());

    println!("Tuning fillrandom on {} ...\n", env_spec.describe());
    let report = TuningSession::new(env_spec, spec, &mut model)
        .with_config(TuningConfig {
            iterations: 7,
            ..TuningConfig::default()
        })
        .run(Options::default())?;

    println!("{}", report.iteration_series_text());

    println!("Safeguard interventions:");
    for r in &report.records {
        for v in &r.violations {
            println!("  iter {}: {}", r.index, v.to_feedback_line());
        }
    }

    println!("\nOption trajectory (Table 5 shape):\n{}", report.table5_text());
    println!(
        "Result: default {:.0} ops/s -> tuned {:.0} ops/s ({:.2}x); p99 write {:.2}us -> {:.2}us",
        report.baseline.ops_per_sec,
        report.best.ops_per_sec,
        report.throughput_improvement(),
        report.baseline.p99_write_us.unwrap_or(0.0),
        report.best.p99_write_us.unwrap_or(0.0),
    );
    Ok(())
}
