//! Read-heavy tuning: bloom filters and block cache do the work.
//!
//! Preloads a store, then runs an ELMo-Tune session for `readrandom` on
//! a simulated 4-core / 4-GiB NVMe box — the paper's Table 3/4 read
//! scenario, where tuning wins by enabling bloom filters and growing the
//! block cache.
//!
//! ```text
//! cargo run --release --example tune_read_heavy
//! ```

use elmo::db_bench::BenchmarkSpec;
use elmo::elmo_tune::{EnvSpec, TuningConfig, TuningSession};
use elmo::hw_sim::DeviceModel;
use elmo::llm_client::ExpertModel;
use elmo::lsm_kvs::options::Options;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env_spec = EnvSpec {
        cores: 4,
        mem_gib: 4,
        device: DeviceModel::nvme_ssd(),
    };
    // 2% of the paper's scale: 500k preloaded keys, 200k reads.
    let spec = BenchmarkSpec::readrandom(0.02);
    let mut model = ExpertModel::well_behaved(42);

    println!(
        "Preloading {} keys, then tuning readrandom on {} ...\n",
        spec.preload_keys,
        env_spec.describe()
    );
    let report = TuningSession::new(env_spec, spec, &mut model)
        .with_config(TuningConfig {
            iterations: 5,
            ..TuningConfig::default()
        })
        .run(Options::default())?;

    println!("{}", report.iteration_series_text());

    println!("Options the tuner settled on (vs defaults):");
    for (name, from, to) in Options::default().diff(&report.final_options) {
        println!("  {name}: {from} -> {to}");
    }

    println!(
        "\nResult: default {:.0} ops/s -> tuned {:.0} ops/s ({:.2}x); p99 read {:.2}us -> {:.2}us",
        report.baseline.ops_per_sec,
        report.best.ops_per_sec,
        report.throughput_improvement(),
        report.baseline.p99_read_us.unwrap_or(0.0),
        report.best.p99_read_us.unwrap_or(0.0),
    );
    Ok(())
}
