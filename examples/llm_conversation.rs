//! A look inside the loop: prompt, LLM response, evaluation, safeguards.
//!
//! Prints one full exchange between the framework and the simulated
//! GPT-4 expert — including what happens when the model hallucinates
//! options or suggests disabling the WAL — without running benchmarks.
//!
//! ```text
//! cargo run --release --example llm_conversation
//! ```

use elmo::elmo_tune::{
    build_tuning_prompt, evaluate_response, vet, ParsedBench, PromptContext, SafeguardPolicy,
};
use elmo::hw_sim::{DeviceModel, HardwareEnv};
use elmo::llm_client::{ChatRequest, ExpertModel, LanguageModel, QuirkConfig};
use elmo::lsm_kvs::options::{ini, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = HardwareEnv::builder()
        .cores(2)
        .memory_gib(4)
        .device(DeviceModel::sata_hdd())
        .build_sim();
    let options = Options::default();
    let options_ini = ini::to_ini(&options);

    let last = ParsedBench {
        workload: "fillrandom".into(),
        ops_per_sec: 61_234.0,
        micros_per_op: 16.33,
        ops: 500_000,
        p99_write_us: Some(140.5),
        stall_seconds: Some(4.2),
        ..ParsedBench::default()
    };

    // Iteration 2 with the quirky expert: it will, among sensible advice,
    // suggest disabling the WAL — which the safeguards must catch.
    let ctx = PromptContext {
        env: &env,
        workload: "write-intensive: insert 50M key-value pairs in random key order",
        options_ini: &options_ini,
        iteration: 2,
        last_result: Some(&last),
        stats_dump: None,
        best_throughput: Some(61_234.0),
        deteriorated: false,
        violation_feedback: &[],
        max_changes: 10,
    };
    let prompt = build_tuning_prompt(&ctx, 16_000);
    println!("================= PROMPT ({} chars) =================", prompt.len());
    println!("{prompt}");

    let mut model = ExpertModel::new(42, QuirkConfig::heavy());
    let response = model.complete(&ChatRequest::single_turn("gpt-4", &prompt))?;
    println!("================= RESPONSE ({}) =================", response.model);
    println!("{}", response.content);

    let evaluation = evaluate_response(&response.content);
    println!("================= OPTION EVALUATOR =================");
    println!(
        "{} code block(s); {} proposed change(s):",
        evaluation.code_blocks,
        evaluation.changes.len()
    );
    for c in &evaluation.changes {
        println!("  {} = {}  [{:?}]", c.name, c.value, c.origin);
    }

    let policy = SafeguardPolicy::with_memory_budget(4 << 30);
    let outcome = vet(&options, &evaluation.changes, &policy);
    println!("================= SAFEGUARD ENFORCER =================");
    println!("accepted ({}):", outcome.applied.len());
    for a in &outcome.applied {
        println!("  {}: {} -> {}", a.name, a.from, a.to);
    }
    println!("rejected/adjusted ({}):", outcome.violations.len());
    for v in &outcome.violations {
        println!("  {}", v.to_feedback_line());
    }
    Ok(())
}
